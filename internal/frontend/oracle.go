package frontend

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"pisd/internal/core"
	"pisd/internal/vec"
)

// Oracle is the plaintext reference the differential simulation suite
// checks the encrypted pipeline against. It pairs a core.PlainMirror —
// the exact plaintext replay of the secure index's cuckoo placement —
// with the unencrypted profile store, and answers discovery queries the
// way Algorithm 3 must: candidate lookup in SecRec order, exclusion,
// exact squared-distance ranking, top-k selection. Any divergence between
// the oracle and the encrypted stack is a bug in the stack (or in the
// network between its tiers), never an approximation artifact.
//
// Distances are exact only when the frontend encrypts full-precision
// profiles (CompactProfiles=false); the simulation suite runs that way.
// All methods are safe for concurrent use, matching the concurrent
// workloads the suite drives.
type Oracle struct {
	f      *Frontend
	mirror *core.PlainMirror // nil for dynamic-only oracles

	mu       sync.Mutex
	profiles map[uint64][]float64
}

// BuildOracle replays the placement of the most recent static build —
// BuildIndex or BuildShardedIndex — in plaintext. It must be called with
// the same uploads, after the build succeeded: prepare() is re-run under
// the same LSH family (including any rehash the build went through), so
// the mirror's cuckoo placement reproduces the secure one slot for slot.
func (f *Frontend) BuildOracle(uploads []Upload) (*Oracle, error) {
	if !f.built {
		return nil, errors.New("frontend: no index built yet")
	}
	items, _, err := f.prepare(uploads, f.rehashed)
	if err != nil {
		return nil, err
	}
	mirror, err := core.NewPlainMirror(f.keys, f.params)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		if err := mirror.Insert(it.ID, it.Meta); err != nil {
			return nil, fmt.Errorf("frontend: oracle replay diverged at %d: %w", it.ID, err)
		}
	}
	o := &Oracle{f: f, mirror: mirror, profiles: make(map[uint64][]float64, len(uploads))}
	for _, u := range uploads {
		o.profiles[u.ID] = u.Profile
	}
	return o, nil
}

// NewDynOracle returns an oracle without a placement mirror, for the
// dynamic scheme: insert-time kicks there depend on live protocol rounds,
// so candidate sets are checked semantically (membership, subset, exact
// distances) rather than slot-exactly. It tracks plaintext profiles for
// ranking checks.
func (f *Frontend) NewDynOracle(uploads []Upload) *Oracle {
	o := &Oracle{f: f, profiles: make(map[uint64][]float64, len(uploads))}
	for _, u := range uploads {
		o.profiles[u.ID] = u.Profile
	}
	return o
}

// PutProfile records a user's plaintext profile (mirroring PutProfiles at
// the cloud).
func (o *Oracle) PutProfile(id uint64, profile []float64) {
	o.mu.Lock()
	o.profiles[id] = profile
	o.mu.Unlock()
}

// RemoveProfile forgets a user (mirroring DeleteProfile at the cloud).
func (o *Oracle) RemoveProfile(id uint64) {
	o.mu.Lock()
	delete(o.profiles, id)
	o.mu.Unlock()
}

// Profile returns the stored plaintext profile for id.
func (o *Oracle) Profile(id uint64) ([]float64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	p, ok := o.profiles[id]
	return p, ok
}

// Candidates predicts the identifiers a SecRec round trip hands the
// ranking stage for target: the mirror's candidates in discovery order,
// restricted to users with a stored profile (the cloud silently skips
// identifiers whose profile is missing).
func (o *Oracle) Candidates(target []float64) []uint64 {
	meta := o.f.family.Hash(target)
	raw := o.mirror.Candidates(meta)
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]uint64, 0, len(raw))
	for _, id := range raw {
		if _, ok := o.profiles[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// Discover is the plaintext reference for Discover / DiscoverSharded /
// DiscoverBatch on a healthy deployment: candidates from the mirror,
// exact distances, top-k in candidate order.
func (o *Oracle) Discover(target []float64, k int, excludeID uint64) []Match {
	return o.rankIDs(target, o.Candidates(target), k, excludeID, nil)
}

// DiscoverOwned is Discover restricted to users for whom alive(owner)
// holds — the expected result when only a subset of shards answered.
// alive receives each candidate's identifier.
func (o *Oracle) DiscoverOwned(target []float64, k int, excludeID uint64, alive func(uint64) bool) []Match {
	return o.rankIDs(target, o.Candidates(target), k, excludeID, alive)
}

// RankCandidates ranks an externally obtained candidate list (e.g. the
// ids a dynamic search returned) exactly as the frontend's ranking stage
// does: skip the excluded id, exact distances against stored profiles,
// top-k fed in candidate order. Unknown ids are an error — the encrypted
// stack produced an identifier the oracle never saw.
func (o *Oracle) RankCandidates(target []float64, ids []uint64, k int, excludeID uint64) ([]Match, error) {
	o.mu.Lock()
	for _, id := range ids {
		if _, ok := o.profiles[id]; !ok {
			o.mu.Unlock()
			return nil, fmt.Errorf("frontend: oracle has no profile for candidate %d", id)
		}
	}
	o.mu.Unlock()
	return o.rankIDs(target, ids, k, excludeID, nil), nil
}

func (o *Oracle) rankIDs(target []float64, ids []uint64, k int, excludeID uint64, alive func(uint64) bool) []Match {
	o.mu.Lock()
	defer o.mu.Unlock()
	tk := vec.NewTopK(k)
	for _, id := range ids {
		if excludeID != 0 && id == excludeID {
			continue
		}
		if alive != nil && !alive(id) {
			continue
		}
		p, ok := o.profiles[id]
		if !ok {
			continue
		}
		tk.Offer(id, vec.Distance(target, p))
	}
	scored := tk.Sorted()
	out := make([]Match, len(scored))
	for i, s := range scored {
		out[i] = Match{ID: s.ID, Distance: s.Score}
	}
	return out
}

// Distance returns the exact squared distance between target and id's
// stored profile.
func (o *Oracle) Distance(target []float64, id uint64) (float64, bool) {
	o.mu.Lock()
	p, ok := o.profiles[id]
	o.mu.Unlock()
	if !ok {
		return 0, false
	}
	return vec.Distance(target, p), true
}

// EqualMatches reports whether two rankings are equivalent: same length,
// both ascending by distance, and pairwise identical up to reordering
// within runs of exactly equal distance. Ties are the one place the
// encrypted stack may legitimately order differently from the oracle —
// shard-major merges feed the top-k selector in a different candidate
// order — so equal-distance runs are compared as identifier sets.
func EqualMatches(got, want []Match) error {
	if len(got) != len(want) {
		return fmt.Errorf("got %d matches, want %d (got %v, want %v)", len(got), len(want), got, want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Distance < got[i-1].Distance {
			return fmt.Errorf("matches not sorted at %d: %v", i, got)
		}
	}
	for i := 0; i < len(want); {
		j := i + 1
		for j < len(want) && want[j].Distance == want[i].Distance {
			j++
		}
		gotIDs := make([]uint64, 0, j-i)
		wantIDs := make([]uint64, 0, j-i)
		for h := i; h < j; h++ {
			if got[h].Distance != want[i].Distance && !(math.IsNaN(got[h].Distance) && math.IsNaN(want[i].Distance)) {
				return fmt.Errorf("match %d distance %v, want %v (got %v, want %v)", h, got[h].Distance, want[i].Distance, got, want)
			}
			gotIDs = append(gotIDs, got[h].ID)
			wantIDs = append(wantIDs, want[h].ID)
		}
		sort.Slice(gotIDs, func(a, b int) bool { return gotIDs[a] < gotIDs[b] })
		sort.Slice(wantIDs, func(a, b int) bool { return wantIDs[a] < wantIDs[b] })
		for h := range gotIDs {
			if gotIDs[h] != wantIDs[h] {
				return fmt.Errorf("tied run [%d,%d): ids %v, want %v", i, j, gotIDs, wantIDs)
			}
		}
		i = j
	}
	return nil
}
