package frontend

import (
	"fmt"

	"pisd/internal/core"
)

// This file is the trusted front end's side of fleet self-healing: the
// repair and migration closures a shard-tier Repairer/Rebalancer drives.
// The shard tier decides WHEN to repair (health probes, version vectors);
// the closures here decide HOW, because only the front end holds the keys
// the dynamic scheme's re-masking machinery needs. The cloud-visible
// access pattern of every closure is the ordinary fetch/re-mask/store
// sweep of dynamic churn — see DESIGN.md §17 for the leakage argument.
//
// Lock discipline: the shard tier invokes these closures while holding
// the group's WRITE lock, and foreground churn holds the shard client's
// lock while taking that same write lock. The closures therefore must
// never touch the foreground client — each shard gets a dedicated forked
// client, created up front while no lock is held, so repair and churn
// can never deadlock on each other (and never contend, either).

// RepairNode is the replica surface the repair closures drive: the bucket
// store plus the encrypted-profile store and its enumeration endpoint.
// shard.ReplicaNode satisfies it structurally, so the shard tier can hand
// its replicas straight to these closures without an import cycle.
type RepairNode interface {
	core.BucketStore
	ProfileFetcher
	PutProfiles(profiles map[uint64][]byte) error
	DeleteProfile(id uint64) error
	ProfileIDs() ([]uint64, error)
	InstallDynIndex(idx *core.DynIndex) error
}

// forkClients forks each shard's dynamic client once, for exclusive use
// by the repair machinery. Shards without a client get a nil slot; using
// one is reported at repair time, not construction.
func forkClients(shards []DynShard) ([]*core.DynClient, error) {
	forks := make([]*core.DynClient, len(shards))
	for s := range shards {
		if shards[s].Client == nil {
			continue
		}
		c, err := shards[s].Client.Fork()
		if err != nil {
			return nil, fmt.Errorf("frontend: fork client for shard %d: %w", s, err)
		}
		forks[s] = c
	}
	return forks, nil
}

// NewReplicaRepair returns the anti-entropy repair function for a
// replicated dynamic deployment: repair(s, src, dst) rebuilds replica dst
// of shard s from its healthy sibling src, after which dst holds the same
// logical state as src under fresh masks. It wipes dst to a freshly
// sealed empty shell (uniform for a restarted-empty and a lagging
// replica — a half-applied state is never trusted), sweeps every bucket
// from src through the re-masking resync in batches of the given position
// width, and mirrors the encrypted profile store. The caller must hold
// the group's write lock so no write interleaves the copy; the shard
// tier's Repairer does.
func NewReplicaRepair(shards []DynShard, batch int) (func(s int, src, dst RepairNode) error, error) {
	forks, err := forkClients(shards)
	if err != nil {
		return nil, err
	}
	return func(s int, src, dst RepairNode) error {
		if s < 0 || s >= len(forks) || forks[s] == nil {
			return fmt.Errorf("frontend: repair: no dynamic client for shard %d", s)
		}
		c := forks[s]
		shell, err := c.NewShell()
		if err != nil {
			return fmt.Errorf("frontend: repair shard %d: build shell: %w", s, err)
		}
		if err := dst.InstallDynIndex(shell); err != nil {
			return fmt.Errorf("frontend: repair shard %d: install shell: %w", s, err)
		}
		if err := c.Resync(src, dst, batch); err != nil {
			return fmt.Errorf("frontend: repair shard %d: %w", s, err)
		}
		if err := mirrorProfiles(src, dst); err != nil {
			return fmt.Errorf("frontend: repair shard %d: %w", s, err)
		}
		return nil
	}, nil
}

// ReplicaMigration is the closure set a shard-tier Rebalancer drives to
// migrate one partition's state onto a newly joined replica in bounded
// online chunks (prepare once, copy ranges, finish with the profile
// store). Width is the bucket positions per table of the partition's
// index — the range the rebalancer chunks over.
type ReplicaMigration struct {
	Prepare   func(s int, src, dst RepairNode) error
	CopyRange func(s int, src, dst RepairNode, lo, hi uint64) error
	Finish    func(s int, src, dst RepairNode) error
	Width     func(s int) uint64
}

// NewReplicaMigration returns the migration closures for a replicated
// dynamic deployment, backed by the same kind of pre-forked per-shard
// clients as NewReplicaRepair, so chunked migration runs beside
// foreground churn without lock coupling.
func NewReplicaMigration(shards []DynShard) (ReplicaMigration, error) {
	forks, err := forkClients(shards)
	if err != nil {
		return ReplicaMigration{}, err
	}
	client := func(s int) (*core.DynClient, error) {
		if s < 0 || s >= len(forks) || forks[s] == nil {
			return nil, fmt.Errorf("frontend: migrate: no dynamic client for shard %d", s)
		}
		return forks[s], nil
	}
	return ReplicaMigration{
		Prepare: func(s int, src, dst RepairNode) error {
			c, err := client(s)
			if err != nil {
				return err
			}
			shell, err := c.NewShell()
			if err != nil {
				return fmt.Errorf("frontend: migrate shard %d: build shell: %w", s, err)
			}
			if err := dst.InstallDynIndex(shell); err != nil {
				return fmt.Errorf("frontend: migrate shard %d: install shell: %w", s, err)
			}
			return nil
		},
		CopyRange: func(s int, src, dst RepairNode, lo, hi uint64) error {
			c, err := client(s)
			if err != nil {
				return err
			}
			if err := c.ResyncRange(src, dst, lo, hi); err != nil {
				return fmt.Errorf("frontend: migrate shard %d: %w", s, err)
			}
			return nil
		},
		Finish: func(s int, src, dst RepairNode) error {
			if err := mirrorProfiles(src, dst); err != nil {
				return fmt.Errorf("frontend: migrate shard %d: %w", s, err)
			}
			return nil
		},
		Width: func(s int) uint64 {
			if s < 0 || s >= len(shards) || shards[s].Index == nil {
				return 0
			}
			return uint64(shards[s].Index.Width())
		},
	}, nil
}

// mirrorProfiles makes dst's encrypted-profile store equal src's: every
// profile src holds is copied over (ciphertexts are opaque bytes — no
// re-encryption, and none needed, since profile ciphertexts are static
// per user) and every extra profile on dst is deleted. The caller
// serializes against writes.
func mirrorProfiles(src, dst RepairNode) error {
	ids, err := src.ProfileIDs()
	if err != nil {
		return fmt.Errorf("enumerate source profiles: %w", err)
	}
	if len(ids) > 0 {
		cts, err := src.FetchProfiles(ids)
		if err != nil {
			return fmt.Errorf("fetch source profiles: %w", err)
		}
		if len(cts) != len(ids) {
			return fmt.Errorf("fetched %d profiles for %d ids", len(cts), len(ids))
		}
		m := make(map[uint64][]byte, len(ids))
		for i, id := range ids {
			m[id] = cts[i]
		}
		if err := dst.PutProfiles(m); err != nil {
			return fmt.Errorf("store profiles: %w", err)
		}
	}
	want := make(map[uint64]struct{}, len(ids))
	for _, id := range ids {
		want[id] = struct{}{}
	}
	dstIDs, err := dst.ProfileIDs()
	if err != nil {
		return fmt.Errorf("enumerate destination profiles: %w", err)
	}
	for _, id := range dstIDs {
		if _, ok := want[id]; ok {
			continue
		}
		if err := dst.DeleteProfile(id); err != nil {
			return fmt.Errorf("delete stale profile %d: %w", id, err)
		}
	}
	return nil
}
