package frontend

import (
	"fmt"
	"sync"

	"pisd/internal/core"
	"pisd/internal/lsh"
	"pisd/internal/subs"
	"pisd/internal/vec"
)

// Streaming discovery subscriptions on the dynamic serving path
// (DESIGN.md §18). A subscription is registered with one normal dynamic
// search — admitted query leakage, shared with the result cache — and
// thereafter evaluated entirely inside the frontend on every successful
// insert and delete: the insert hook matches the new profile's own bucket
// write set against each subscription's standing read set, both pure PRF
// functions of metadata the frontend already holds, so the cloud observes
// exactly the update transcript it would with zero subscriptions
// registered.

// AttachSubscriptions installs a subscription manager on the dynamic
// serving path, delivering notifications through emit (synchronously,
// under the mutation that caused them; nil drops them). Must be called
// before serving traffic; returns the manager for direct inspection.
func (s *DynServing) AttachSubscriptions(emit func(subs.Notification)) *subs.Manager {
	s.subsm = subs.NewManager(emit)
	return s.subsm
}

// Subscriptions returns the attached manager (nil when detached).
func (s *DynServing) Subscriptions() *subs.Manager { return s.subsm }

// Subscribe registers a standing top-k query for subID's profile and
// returns its initial standing result. Seeding runs one normal dynamic
// search through the serving path's result cache — the one cloud-visible
// operation a subscription ever costs, indistinguishable from any other
// search for the same metadata. A degraded (partial) view refuses the
// registration: a standing result must never start from a shard subset.
func (s *DynServing) Subscribe(subID uint64, profile []float64, k int) ([]subs.Entry, error) {
	if s.subsm == nil {
		return nil, fmt.Errorf("frontend: no subscription manager attached")
	}
	s.churn.Lock()
	defer s.churn.Unlock()
	meta := s.f.family.Hash(profile)
	refs, err := s.subRefs(meta)
	if err != nil {
		return nil, err
	}
	ids, vecs, err := s.seedSearch(profile, meta)
	if err != nil {
		return nil, fmt.Errorf("frontend: subscription %d seed search: %w", subID, err)
	}
	seed := make(map[uint64]float64, len(ids))
	for i, id := range ids {
		seed[id] = vec.Distance(profile, vecs[i])
	}
	return s.subsm.Register(subID, k, profile, subID, refs, seed)
}

// Unsubscribe removes a standing query, reporting whether it existed.
func (s *DynServing) Unsubscribe(subID uint64) bool {
	if s.subsm == nil {
		return false
	}
	return s.subsm.Unsubscribe(subID)
}

// seedSearch is the cache-integrated candidate fetch of Search, pre-rank:
// a hit replays the cached plaintext candidates with zero cloud traffic,
// a miss runs the sharded search and fills the cache. Callers hold churn.
func (s *DynServing) seedSearch(profile []float64, meta lsh.Metadata) ([]uint64, [][]float64, error) {
	refs0, err := s.shards[0].Client.Refs(meta)
	if err != nil {
		return nil, nil, err
	}
	key := refsKey(refs0)
	if ids, vecs, ok := s.cache.Get(key); ok {
		fmet.cacheHits.Inc()
		return ids, vecs, nil
	}
	fmet.cacheMisses.Inc()
	ids, encProfiles, partial, err := s.f.dynSearchMerged(s.shards, s.nodes, meta)
	if err != nil {
		return nil, nil, err
	}
	if partial {
		return nil, nil, fmt.Errorf("frontend: degraded to partial view")
	}
	vecs, err := s.f.decryptProfiles(ids, encProfiles)
	if err != nil {
		return nil, nil, err
	}
	s.cache.Put(key, refs0, ids, vecs)
	return ids, vecs, nil
}

// subRefs computes meta's standing read set on every shard: each shard's
// index has its own geometry, so the per-shard reference lists are tagged
// with their shard before they meet the subscription index.
func (s *DynServing) subRefs(meta lsh.Metadata) ([]subs.Ref, error) {
	var out []subs.Ref
	for sh := range s.shards {
		refs, err := s.shards[sh].Client.Refs(meta)
		if err != nil {
			return nil, fmt.Errorf("frontend: shard %d refs: %w", sh, err)
		}
		out = append(out, tagRefs(sh, refs)...)
	}
	return out, nil
}

// tagRefs lifts one shard's bucket references into the subscription
// index's per-shard keyspace.
func tagRefs(shard int, refs []core.BucketRef) []subs.Ref {
	out := make([]subs.Ref, len(refs))
	for i, r := range refs {
		out[i] = subs.Ref{Shard: shard, Table: r.Table, Pos: r.Pos}
	}
	return out
}

// notifyInsert evaluates subscriptions against one successful insert.
// The write set equals the insert's own first-round bucket writes —
// Refs(meta) on the owning shard, deduplicated — so the evaluation adds
// zero cloud operations. Callers hold churn.
func (s *DynServing) notifyInsert(id uint64, profile []float64) {
	if s.subsm == nil {
		return
	}
	sh, err := routeShard(s.shards, s.nodes, s.owner, id)
	if err != nil {
		return
	}
	refs, err := s.shards[sh].Client.Refs(s.f.family.Hash(profile))
	if err != nil {
		return
	}
	s.subsm.OnInsert(id, profile, tagRefs(sh, refs))
}

// notifyDelete evicts one successfully deleted profile from every
// standing result, promoting runners-up. Callers hold churn.
func (s *DynServing) notifyDelete(id uint64) {
	if s.subsm == nil {
		return
	}
	s.subsm.OnDelete(id)
}

// RescoreSubscriptions re-validates every standing candidate against the
// authoritative replicated profile stores: the batched re-score fan-out.
// Candidate identifiers are grouped by owning shard, fetched in one
// gap-tolerant batch per shard concurrently (a ReplicaGroup node serves
// the read from its healthiest current replica, failing over like any
// group read), decrypted, and applied in one manager pass — distances
// recomputed, group-wide-deleted candidates dropped, any resulting
// standing-result entries notified. All-or-nothing: a shard that cannot
// answer aborts the pass so a transient fault is never mistaken for a
// deletion. Returns the number of corrected candidates.
func (s *DynServing) RescoreSubscriptions() (int, error) {
	if s.subsm == nil {
		return 0, fmt.Errorf("frontend: no subscription manager attached")
	}
	s.churn.Lock()
	defer s.churn.Unlock()
	ids := s.subsm.CandidateIDs()
	if len(ids) == 0 {
		return 0, nil
	}
	byShard := make(map[int][]uint64)
	for _, id := range ids {
		sh, err := routeShard(s.shards, s.nodes, s.owner, id)
		if err != nil {
			return 0, err
		}
		byShard[sh] = append(byShard[sh], id)
	}
	var mu sync.Mutex
	profiles := make(map[uint64][]float64, len(ids))
	var wg sync.WaitGroup
	errs := make([]error, len(s.nodes))
	for sh, shardIDs := range byShard {
		wg.Add(1)
		go func(sh int, shardIDs []uint64) {
			defer wg.Done()
			cts, err := fetchProfilesSparse(s.nodes[sh], shardIDs)
			if err != nil {
				errs[sh] = fmt.Errorf("frontend: rescore fetch shard %d: %w", sh, err)
				return
			}
			for i, ct := range cts {
				if i >= len(shardIDs) {
					break
				}
				if len(ct) == 0 {
					continue // deleted group-wide: drop below
				}
				p, err := s.f.DecryptProfile(ct)
				if err != nil {
					errs[sh] = fmt.Errorf("frontend: rescore decrypt %d: %w", shardIDs[i], err)
					return
				}
				mu.Lock()
				profiles[shardIDs[i]] = p
				mu.Unlock()
			}
		}(sh, shardIDs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return s.subsm.Rescore(profiles), nil
}

// sparseProfileFetcher mirrors shard.SparseProfileFetcher without
// importing the shard package: the gap-tolerant batched profile read.
type sparseProfileFetcher interface {
	FetchProfilesSparse(ids []uint64) ([][]byte, error)
}

// fetchProfilesSparse runs the gap-tolerant read when the node supports
// it, degrading to the strict read otherwise.
func fetchProfilesSparse(n DynNode, ids []uint64) ([][]byte, error) {
	if sf, ok := n.(sparseProfileFetcher); ok {
		return sf.FetchProfilesSparse(ids)
	}
	return n.FetchProfiles(ids)
}
