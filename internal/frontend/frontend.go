// Package frontend implements the trusted on-premise service front end SF
// of the paper's architecture (Fig. 1): it owns the secret keys, shares the
// LSH parameters with user clients, builds the secure index over the
// uploaded image profiles, issues discovery trapdoors, and decrypts and
// distance-ranks the cloud's encrypted matches into recommendations.
package frontend

import (
	"errors"
	"fmt"

	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/fof"
	"pisd/internal/lsh"
	"pisd/internal/obs"
	"pisd/internal/vec"
)

// Config parameterizes a front end.
type Config struct {
	// LSH defines the shared hash family h (pre-shared with users).
	LSH lsh.Params
	// LoadFactor is the index load factor τ ∈ (0, 1].
	LoadFactor float64
	// ProbeRange is d, the random probe range.
	ProbeRange int
	// MaxLoop bounds cuckoo kicks per insertion.
	MaxLoop int
	// MaxRehash bounds full index rebuilds with fresh LSH parameters.
	MaxRehash int
	// Seed drives non-cryptographic randomness (kick choices).
	Seed int64
	// KeySeed, when non-empty, derives keys deterministically (tests and
	// reproducible benchmarks only); empty means fresh random keys.
	KeySeed string
	// CompactProfiles encrypts profiles with float32 entries, halving S*
	// to the paper's ~4 KB per 1000-dim profile. Ranking precision is
	// unaffected (profiles are unit-norm histograms).
	CompactProfiles bool
}

// DefaultConfig returns the paper's default operating point: l = 10
// tables, d = 4 probes, τ = 0.8.
func DefaultConfig(dim int) Config {
	return Config{
		LSH:        lsh.Params{Dim: dim, Tables: 10, Atoms: 4, Width: 0.7, Seed: 1},
		LoadFactor: 0.8,
		ProbeRange: 4,
		MaxLoop:    500,
		MaxRehash:  3,
		Seed:       1,
	}
}

// UntunedConfigForPopulation returns DefaultConfig scaled to an expected
// population size on the atom axis only: the per-table LSH atom count
// grows logarithmically with n. Each atom multiplies the effective hash
// codomain, and with a codomain fixed while n grows, whole swaths of the
// population share per-table hash values, their cuckoo candidate windows
// coincide, and the placement saturates long before the nominal τ = 0.8
// load (measured: at n = 100k with 4 atoms a quarter of all items
// overflow; 5 atoms place the same population with zero overflow). This
// is the standard E2LSH k ≈ log n scaling, applied at the paper's
// operating point. It is the pre-autotune scaling rule, kept as the
// reference the autotuner (internal/autotune) sweeps against; production
// entry points use ConfigForPopulation, which applies the measured tuned
// operating points on top of it.
func UntunedConfigForPopulation(dim, users int) Config {
	cfg := DefaultConfig(dim)
	cfg.LSH.Atoms = autoAtoms(users)
	return cfg
}

// ConfigForPopulation returns the operating point production derives from
// the public population size n alone (build and attach must agree, so it
// is a pure function of n): UntunedConfigForPopulation with the
// autotuner's measured tuned parameters applied for population tiers the
// frontier has been measured at. See tunedPoints.
func ConfigForPopulation(dim, users int) Config {
	cfg := UntunedConfigForPopulation(dim, users)
	for _, tp := range tunedPoints {
		if users <= tp.maxUsers {
			cfg.LSH.Tables = tp.tables
			cfg.LSH.Atoms = tp.atoms
			cfg.LSH.Width = tp.width
			cfg.ProbeRange = tp.probeRange
			break
		}
	}
	return cfg
}

// tunedOperating is one autotuner-measured operating point: the cheapest
// config whose secure-path recall@10 stays within 1% of the untuned
// reference for populations up to maxUsers.
type tunedOperating struct {
	maxUsers   int
	tables     int
	atoms      int
	width      float64
	probeRange int
}

// tunedPoints is the measured recall-vs-cost frontier selection, produced
// by `pisd-autotune` (EXPERIMENTS.md "Recall-vs-cost autotuning",
// BENCH_PR8.json). Populations beyond the last measured tier fall back to
// the untuned rule: extrapolating a tuned l below the paper's default to
// unmeasured regimes risks silent recall loss, while the untuned point is
// validated up to 1M by the scale smoke. Parameters here are functions of
// the public n only — see the leakage argument in DESIGN.md §16.
// Each tier's parameters were measured at the tier ceiling; for smaller
// populations the same config only gets sparser per bucket, so applying a
// tier downward never risks the placement that was verified at its
// ceiling.
var tunedPoints = []tunedOperating{
	// n=10k winner: budget 30 vs the untuned 50 (−40%), measured secure
	// recall@10 0.0563 vs 0.0281 and 2.3× the reference qps.
	{maxUsers: 10_000, tables: 6, atoms: 5, width: 1.0, probeRange: 4},
	// n=100k winner: budget 35 vs the untuned 50 (−30%), measured secure
	// recall@10 0.0234 vs 0.0125 and 7.4× the reference qps.
	{maxUsers: 100_000, tables: 7, atoms: 6, width: 1.0, probeRange: 4},
}

// autoAtoms is 4 up to 20k users, plus one atom per factor of 5 beyond
// (4 at 20k, 5 at 100k, 6 at 500k, 7 at 1M), matching the measured
// placement-saturation thresholds with one factor of headroom.
func autoAtoms(users int) int {
	a := 4
	for lim := 20000; users > lim; lim *= 5 {
		a++
	}
	return a
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.LSH.Validate(); err != nil {
		return err
	}
	switch {
	case c.LoadFactor <= 0 || c.LoadFactor > 1:
		return fmt.Errorf("frontend: load factor %v out of (0,1]", c.LoadFactor)
	case c.ProbeRange < 0:
		return fmt.Errorf("frontend: probe range must be >= 0, got %d", c.ProbeRange)
	case c.MaxLoop < 1:
		return fmt.Errorf("frontend: max loop must be >= 1, got %d", c.MaxLoop)
	case c.MaxRehash < 0:
		return fmt.Errorf("frontend: max rehash must be >= 0, got %d", c.MaxRehash)
	}
	return nil
}

// Upload is one user's contribution to Service frontend initialization:
// the small image profile S and metadata V sent to SF (service flow
// step 2). Meta may be nil, in which case SF computes it from the shared
// LSH parameters (useful when clients are trusted thin).
type Upload struct {
	ID      uint64
	Profile []float64
	Meta    lsh.Metadata
}

// Match is one discovery result: a recommended user and their profile
// distance to the target.
type Match struct {
	ID       uint64
	Distance float64
}

// DiscoveryServer is the cloud surface the front end drives for static
// discovery. cloud.Server and the transport client both implement it.
type DiscoveryServer interface {
	SecRec(t *core.Trapdoor) (ids []uint64, encProfiles [][]byte, err error)
}

// Frontend is the trusted service front end.
type Frontend struct {
	cfg    Config
	keys   *crypt.KeySet
	family *lsh.Family
	params core.Params
	built  bool
	// rehashed records whether the most recent successful build went
	// through the rehash() step, i.e. whether upload metadata supplied by
	// clients was recomputed under fresh LSH parameters. BuildOracle needs
	// it to replay the build's placement exactly.
	rehashed bool
}

// New creates a front end, generating keys via Gen(1^λ) and instantiating
// the shared LSH family.
func New(cfg Config) (*Frontend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var keys *crypt.KeySet
	var err error
	if cfg.KeySeed != "" {
		keys, err = crypt.GenDeterministic(cfg.KeySeed, cfg.LSH.Tables)
	} else {
		keys, err = crypt.Gen(cfg.LSH.Tables)
	}
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	family, err := lsh.New(cfg.LSH)
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	return &Frontend{cfg: cfg, keys: keys, family: family}, nil
}

// SharedLSHParams returns the LSH parameter set h that SF pre-shares with
// every user client for ComputeLSH.
func (f *Frontend) SharedLSHParams() lsh.Params { return f.family.Params() }

// ComputeMeta hashes a profile with the current shared family — what a
// user client computes as V = ComputeLSH(S, h).
func (f *Frontend) ComputeMeta(profile []float64) lsh.Metadata {
	return f.family.Hash(profile)
}

// IndexParams returns the parameters of the most recently built index.
func (f *Frontend) IndexParams() (core.Params, error) {
	if !f.built {
		return core.Params{}, errors.New("frontend: no index built yet")
	}
	return f.params, nil
}

// EncryptProfile produces S* = Enc(ks, S), honouring CompactProfiles.
func (f *Frontend) EncryptProfile(profile []float64) ([]byte, error) {
	if f.cfg.CompactProfiles {
		return crypt.EncProfileCompact(f.keys.KS, profile)
	}
	return crypt.EncProfile(f.keys.KS, profile)
}

// DecryptProfile recovers S from S*.
func (f *Frontend) DecryptProfile(ct []byte) ([]float64, error) {
	return crypt.DecProfile(f.keys.KS, ct)
}

// prepare derives index params and items for the given uploads, hashing
// profiles whose metadata is absent or stale (after a rehash).
func (f *Frontend) prepare(uploads []Upload, forceRehash bool) ([]core.Item, core.Params, error) {
	items := make([]core.Item, len(uploads))
	for i, u := range uploads {
		if len(u.Profile) != f.cfg.LSH.Dim && (u.Meta == nil || forceRehash) {
			return nil, core.Params{}, fmt.Errorf("frontend: upload %d profile dim %d, want %d", u.ID, len(u.Profile), f.cfg.LSH.Dim)
		}
		meta := u.Meta
		if meta == nil || forceRehash {
			meta = f.family.Hash(u.Profile)
		}
		items[i] = core.Item{ID: u.ID, Meta: meta}
	}
	p := core.Params{
		Tables:     f.cfg.LSH.Tables,
		Capacity:   core.CapacityFor(len(uploads), f.cfg.LoadFactor),
		ProbeRange: f.cfg.ProbeRange,
		MaxLoop:    f.cfg.MaxLoop,
		Seed:       f.cfg.Seed,
	}
	return items, p, nil
}

// buildLoop runs the rehash() step of Algorithm 1 around an index build:
// when build reports core.ErrNeedRehash it draws fresh LSH parameters,
// recomputes every upload's metadata and retries, up to MaxRehash times.
// It returns the index parameters the successful build used.
func (f *Frontend) buildLoop(uploads []Upload, build func(items []core.Item, p core.Params) error) (core.Params, error) {
	items, p, err := f.prepare(uploads, false)
	if err != nil {
		return core.Params{}, err
	}
	for attempt := 0; ; attempt++ {
		err = build(items, p)
		if err == nil {
			f.rehashed = attempt > 0
			return p, nil
		}
		if !errors.Is(err, core.ErrNeedRehash) || attempt >= f.cfg.MaxRehash {
			return core.Params{}, fmt.Errorf("frontend: build index: %w", err)
		}
		family, rerr := f.family.Rehash(f.cfg.LSH.Seed + int64(attempt) + 1)
		if rerr != nil {
			return core.Params{}, fmt.Errorf("frontend: rehash: %w", rerr)
		}
		f.family = family
		if items, p, err = f.prepare(uploads, true); err != nil {
			return core.Params{}, err
		}
	}
}

// BuildIndex implements ConSecIdx over the uploads: it builds the static
// secure index I and the encrypted profile set {S*}. When cuckoo insertion
// fails it performs the rehash() step of Algorithm 1 — fresh LSH
// parameters, recomputed metadata, full rebuild — up to MaxRehash times.
func (f *Frontend) BuildIndex(uploads []Upload) (*core.Index, map[uint64][]byte, error) {
	var idx *core.Index
	p, err := f.buildLoop(uploads, func(items []core.Item, p core.Params) error {
		var berr error
		idx, berr = core.Build(f.keys, items, p)
		return berr
	})
	if err != nil {
		return nil, nil, err
	}
	f.params = p
	f.built = true

	encProfiles, err := f.encryptProfiles(uploads)
	if err != nil {
		return nil, nil, err
	}
	return idx, encProfiles, nil
}

// encryptProfiles produces {S*} for a batch of uploads. Each profile's
// encryption is independent (fresh IV, shared key), so the batch fans out
// across CPUs; the map is assembled serially afterwards (maps are not
// concurrent-write safe).
func (f *Frontend) encryptProfiles(uploads []Upload) (map[uint64][]byte, error) {
	cts, err := f.encryptProfileSlice(uploads)
	if err != nil {
		return nil, err
	}
	encProfiles := make(map[uint64][]byte, len(uploads))
	for i, u := range uploads {
		encProfiles[u.ID] = cts[i]
	}
	return encProfiles, nil
}

// encryptProfileSlice encrypts each upload's profile in parallel and
// returns the ciphertexts aligned with uploads.
func (f *Frontend) encryptProfileSlice(uploads []Upload) ([][]byte, error) {
	cts := make([][]byte, len(uploads))
	err := parallelFor(len(uploads), func(i int) error {
		ct, err := f.EncryptProfile(uploads[i].Profile)
		if err != nil {
			return fmt.Errorf("frontend: encrypt profile %d: %w", uploads[i].ID, err)
		}
		cts[i] = ct
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cts, nil
}

// BuildDynamicIndex builds the updatable index variant plus its front-end
// client (Sec. III-D).
func (f *Frontend) BuildDynamicIndex(uploads []Upload) (*core.DynIndex, *core.DynClient, map[uint64][]byte, error) {
	items, p, err := f.prepare(uploads, false)
	if err != nil {
		return nil, nil, nil, err
	}
	idx, client, err := core.BuildDynamic(f.keys, items, p)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("frontend: build dynamic index: %w", err)
	}
	f.params = p
	f.built = true
	f.rehashed = false
	encProfiles, err := f.encryptProfiles(uploads)
	if err != nil {
		return nil, nil, nil, err
	}
	return idx, client, encProfiles, nil
}

// Trapdoor issues the secure discovery trapdoor t = GenTpdr(K, V) for a
// target profile.
func (f *Frontend) Trapdoor(profile []float64) (*core.Trapdoor, error) {
	if !f.built {
		return nil, errors.New("frontend: no index built yet")
	}
	return core.GenTpdr(f.keys, f.family.Hash(profile), f.params)
}

// TrapdoorForMeta issues a trapdoor from precomputed metadata.
func (f *Frontend) TrapdoorForMeta(meta lsh.Metadata) (*core.Trapdoor, error) {
	if !f.built {
		return nil, errors.New("frontend: no index built yet")
	}
	return core.GenTpdr(f.keys, meta, f.params)
}

// Discover runs the full privacy-preserving discovery flow for a target
// profile: trapdoor → SecRec at the cloud → decrypt matches → exact
// distance ranking → top-k recommendations (GetRec). excludeID removes the
// target's own identifier from the results (pass 0 to keep everything).
func (f *Frontend) Discover(server DiscoveryServer, targetProfile []float64, k int, excludeID uint64) ([]Match, error) {
	return f.discover(server, targetProfile, k, excludeID, nil)
}

// DiscoverTraced is Discover returning, alongside the matches, a per-query
// trace with the latency of each stage (trapdoor, fanout, decrypt, rank).
// The same stage durations feed the frontend.* histograms on every
// discovery; the trace is the single-query view of that breakdown.
func (f *Frontend) DiscoverTraced(server DiscoveryServer, targetProfile []float64, k int, excludeID uint64) ([]Match, *obs.Trace, error) {
	tr := obs.NewTrace("discover")
	matches, err := f.discover(server, targetProfile, k, excludeID, tr)
	return matches, tr, err
}

func (f *Frontend) discover(server DiscoveryServer, targetProfile []float64, k int, excludeID uint64, tr *obs.Trace) ([]Match, error) {
	var sp obs.Span
	sp.StartTraced(tr)
	td, err := f.Trapdoor(targetProfile)
	if err != nil {
		return nil, err
	}
	sp.Mark("trapdoor", fmet.trapdoorNs)
	ids, encProfiles, err := server.SecRec(td)
	if err != nil {
		return nil, fmt.Errorf("frontend: discovery request: %w", err)
	}
	sp.Mark("fanout", fmet.fanoutNs)
	matches, err := f.rankSpanned(targetProfile, ids, encProfiles, k, excludeID, &sp)
	if err != nil {
		return nil, err
	}
	sp.Finish(fmet.discoverNs)
	fmet.discoveries.Inc()
	return matches, nil
}

// rank implements GetRec(K, M): decrypt the matched profiles and order by
// Euclidean distance to the target.
//
// Decryption and distance evaluation — the expensive part — run in
// parallel into a distance array aligned with ids; the top-k heap is then
// fed serially in the original id order. Feeding the heap in order (rather
// than merging per-worker heaps) keeps the output byte-identical to the
// serial implementation even when candidates tie in distance.
func (f *Frontend) rank(target []float64, ids []uint64, encProfiles [][]byte, k int, excludeID uint64) ([]Match, error) {
	return f.rankSpanned(target, ids, encProfiles, k, excludeID, nil)
}

// rankSpanned is rank with an optional in-progress discovery span: the
// decrypt+distance phase and the top-k phase are marked as separate
// stages (sp may be nil).
func (f *Frontend) rankSpanned(target []float64, ids []uint64, encProfiles [][]byte, k int, excludeID uint64, sp *obs.Span) ([]Match, error) {
	if len(ids) != len(encProfiles) {
		return nil, fmt.Errorf("frontend: %d ids but %d profiles", len(ids), len(encProfiles))
	}
	dists := make([]float64, len(ids))
	skip := make([]bool, len(ids))
	err := parallelFor(len(ids), func(i int) error {
		if excludeID != 0 && ids[i] == excludeID {
			skip[i] = true
			return nil
		}
		s, err := crypt.DecProfile(f.keys.KS, encProfiles[i])
		if err != nil {
			return fmt.Errorf("frontend: decrypt match %d: %w", ids[i], err)
		}
		dists[i] = vec.Distance(target, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sp.Mark("decrypt", fmet.decryptNs)
	tk := vec.NewTopK(k)
	for i := range ids {
		if !skip[i] {
			tk.Offer(ids[i], dists[i])
		}
	}
	scored := tk.Sorted()
	out := make([]Match, len(scored))
	for i, s := range scored {
		out[i] = Match{ID: s.ID, Distance: s.Score}
	}
	sp.Mark("rank", fmet.rankNs)
	return out, nil
}

// decryptProfiles decrypts a full candidate set into plaintext profile
// vectors (parallel across candidates). The serving path decrypts once
// on a cache miss and caches the plaintext: the frontend is trusted and
// holds KS, so plaintext in frontend memory adds no leakage, and cache
// hits skip the per-candidate MAC + AES work entirely.
func (f *Frontend) decryptProfiles(ids []uint64, encProfiles [][]byte) ([][]float64, error) {
	if len(ids) != len(encProfiles) {
		return nil, fmt.Errorf("frontend: %d ids but %d profiles", len(ids), len(encProfiles))
	}
	vecs := make([][]float64, len(ids))
	err := parallelFor(len(ids), func(i int) error {
		s, err := crypt.DecProfile(f.keys.KS, encProfiles[i])
		if err != nil {
			return fmt.Errorf("frontend: decrypt match %d: %w", ids[i], err)
		}
		vecs[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return vecs, nil
}

// rankPlain is rankSpanned over already-decrypted candidate vectors:
// identical distance evaluation and in-order top-k feeding, so the
// output is byte-identical to ranking the matching ciphertexts.
func (f *Frontend) rankPlain(target []float64, ids []uint64, vecs [][]float64, k int, excludeID uint64, sp *obs.Span) ([]Match, error) {
	if len(ids) != len(vecs) {
		return nil, fmt.Errorf("frontend: %d ids but %d profiles", len(ids), len(vecs))
	}
	dists := make([]float64, len(ids))
	skip := make([]bool, len(ids))
	for i := range ids {
		if excludeID != 0 && ids[i] == excludeID {
			skip[i] = true
			continue
		}
		dists[i] = vec.Distance(target, vecs[i])
	}
	sp.Mark("decrypt", fmet.decryptNs)
	tk := vec.NewTopK(k)
	for i := range ids {
		if !skip[i] {
			tk.Offer(ids[i], dists[i])
		}
	}
	scored := tk.Sorted()
	out := make([]Match, len(scored))
	for i, s := range scored {
		out[i] = Match{ID: s.ID, Distance: s.Score}
	}
	sp.Mark("rank", fmet.rankNs)
	return out, nil
}

// DiscoverFoF is Discover followed by friend-of-friend boosting: among the
// distance-ranked candidates, friends-of-friends of the target user are
// promoted (Sec. III-C).
func (f *Frontend) DiscoverFoF(server DiscoveryServer, graph *fof.Graph, targetID uint64, targetProfile []float64, k int) ([]Match, error) {
	matches, err := f.Discover(server, targetProfile, k*2, targetID)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, len(matches))
	byID := make(map[uint64]Match, len(matches))
	for i, m := range matches {
		ids[i] = m.ID
		byID[m.ID] = m
	}
	boosted := graph.Boost(targetID, ids)
	if len(boosted) > k {
		boosted = boosted[:k]
	}
	out := make([]Match, len(boosted))
	for i, id := range boosted {
		out[i] = byID[id]
	}
	return out, nil
}

// DynSearch runs discovery against a dynamic index: the client recovers
// candidate ids from the bucket store, then fetches and ranks their
// encrypted profiles.
func (f *Frontend) DynSearch(client *core.DynClient, store core.BucketStore, fetch ProfileFetcher, targetProfile []float64, k int, excludeID uint64) ([]Match, error) {
	var sp obs.Span
	sp.Start()
	ids, err := client.Search(store, f.family.Hash(targetProfile))
	if err != nil {
		return nil, fmt.Errorf("frontend: dynamic search: %w", err)
	}
	encProfiles, err := fetch.FetchProfiles(ids)
	if err != nil {
		return nil, fmt.Errorf("frontend: fetch profiles: %w", err)
	}
	matches, err := f.rank(targetProfile, ids, encProfiles, k, excludeID)
	if err != nil {
		return nil, err
	}
	sp.Finish(fmet.dynNs)
	return matches, nil
}

// ProfileFetcher is the cloud surface returning encrypted profiles by id.
type ProfileFetcher interface {
	FetchProfiles(ids []uint64) ([][]byte, error)
}

// ExportKeys serializes the front end's secret key material for secure
// storage. The blob contains every key; protect it like the keys
// themselves. Restore with ConfigWithKeys + NewWithKeys.
func (f *Frontend) ExportKeys() ([]byte, error) {
	return f.keys.MarshalBinary()
}

// NewWithKeys creates a front end from previously exported key material
// instead of generating fresh keys: the restart path. The key blob's table
// count must match cfg.LSH.Tables (trapdoors and the persisted index are
// bound to both).
func NewWithKeys(cfg Config, keyBlob []byte) (*Frontend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	keys := &crypt.KeySet{}
	if err := keys.UnmarshalBinary(keyBlob); err != nil {
		return nil, fmt.Errorf("frontend: restore keys: %w", err)
	}
	if keys.NumTables() != cfg.LSH.Tables {
		return nil, fmt.Errorf("frontend: restored keys cover %d tables, config has %d",
			keys.NumTables(), cfg.LSH.Tables)
	}
	family, err := lsh.New(cfg.LSH)
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	return &Frontend{cfg: cfg, keys: keys, family: family}, nil
}

// RestoreIndexParams marks the front end as serving an existing index with
// the given parameters (e.g. after both SF and CS restarted and the index
// was reloaded at the cloud), enabling trapdoor issue without a rebuild.
func (f *Frontend) RestoreIndexParams(p core.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Tables != f.cfg.LSH.Tables {
		return fmt.Errorf("frontend: index covers %d tables, config has %d", p.Tables, f.cfg.LSH.Tables)
	}
	f.params = p
	f.built = true
	return nil
}
