package frontend

import (
	"math/rand"
	"testing"

	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/dataset"
	"pisd/internal/fof"
	"pisd/internal/lsh"
	"pisd/internal/vec"
)

func testConfig() Config {
	return Config{
		LSH:        lsh.Params{Dim: 100, Tables: 8, Atoms: 2, Width: 0.8, Seed: 1},
		LoadFactor: 0.8,
		ProbeRange: 6,
		MaxLoop:    300,
		MaxRehash:  3,
		Seed:       1,
		KeySeed:    "frontend-test",
	}
}

func testPopulation(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	cfg := dataset.Config{
		Users: n, Dim: 100, Topics: 10, TopicsPerUser: 2,
		ActiveWords: 20, Noise: 0.02, Seed: 7,
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func uploadsFrom(ds *dataset.Dataset, f *Frontend) []Upload {
	ups := make([]Upload, len(ds.Profiles))
	for i, p := range ds.Profiles {
		ups[i] = Upload{ID: uint64(i + 1), Profile: p, Meta: f.ComputeMeta(p)}
	}
	return ups
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad lsh", func(c *Config) { c.LSH.Dim = 0 }},
		{"zero load", func(c *Config) { c.LoadFactor = 0 }},
		{"load above one", func(c *Config) { c.LoadFactor = 1.5 }},
		{"negative probes", func(c *Config) { c.ProbeRange = -1 }},
		{"zero maxloop", func(c *Config) { c.MaxLoop = 0 }},
		{"negative rehash", func(c *Config) { c.MaxRehash = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := testConfig()
			tt.mut(&c)
			if _, err := New(c); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if err := DefaultConfig(1000).Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestEndToEndDiscovery(t *testing.T) {
	const n = 400
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	uploads := uploadsFrom(ds, f)

	idx, encProfiles, err := f.BuildIndex(uploads)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)
	if cs.NumProfiles() != n {
		t.Fatalf("cloud holds %d profiles", cs.NumProfiles())
	}

	// Discovery for an indexed user must surface the user themself at
	// distance zero when not excluded.
	target := ds.Profiles[3]
	matches, err := f.Discover(cs, target, 5, 0)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	if matches[0].ID != 4 || matches[0].Distance > 1e-9 {
		t.Errorf("self match missing: got %+v", matches[0])
	}
	// With exclusion, the self id must vanish.
	matches, err = f.Discover(cs, target, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.ID == 4 {
			t.Error("excluded id present")
		}
	}
	// Results must be distance-sorted.
	for i := 1; i < len(matches); i++ {
		if matches[i].Distance < matches[i-1].Distance {
			t.Fatal("matches not sorted")
		}
	}
}

func TestDiscoveryFindsTopicPeers(t *testing.T) {
	const n = 500
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	idx, encProfiles, err := f.BuildIndex(uploadsFrom(ds, f))
	if err != nil {
		t.Fatal(err)
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	// Fresh query users drawn from the same topic model: their top
	// matches should share topics clearly more often than chance.
	queries, queryTopics := ds.Queries(20, 99)
	sharedTop, totalTop := 0, 0
	for qi, q := range queries {
		matches, err := f.Discover(cs, q, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			if dataset.SharedTopics(queryTopics[qi], ds.UserTopics[m.ID-1]) > 0 {
				sharedTop++
			}
			totalTop++
		}
	}
	if totalTop == 0 {
		t.Fatal("no discovery results at all")
	}
	frac := float64(sharedTop) / float64(totalTop)
	// Chance level: with 10 topics and 2 per user, random pairs share a
	// topic with prob ~0.38. Require clearly better.
	if frac < 0.6 {
		t.Errorf("topic consistency %.2f below 0.6 (results not better than chance)", frac)
	}
}

func TestTrapdoorRequiresBuild(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Trapdoor(make([]float64, 100)); err == nil {
		t.Error("trapdoor before build accepted")
	}
	if _, err := f.IndexParams(); err == nil {
		t.Error("IndexParams before build accepted")
	}
}

func TestProfileEncryptionRoundTrip(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := vec.Normalize([]float64{1, 2, 3})
	ct, err := f.EncryptProfile(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.DecryptProfile(ct)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatal("profile round trip mismatch")
		}
	}
}

func TestDiscoverFoFBoostsSocialties(t *testing.T) {
	const n = 300
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	idx, encProfiles, err := f.BuildIndex(uploadsFrom(ds, f))
	if err != nil {
		t.Fatal(err)
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	target := uint64(10)
	plain, err := f.Discover(cs, ds.Profiles[9], 10, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) < 2 {
		t.Skip("not enough candidates for FoF test")
	}
	// Make the last-ranked candidate a friend-of-friend of the target.
	g := fof.NewGraph()
	bridge := uint64(299)
	g.AddFriendship(target, bridge)
	g.AddFriendship(bridge, plain[len(plain)-1].ID)

	boosted, err := f.DiscoverFoF(cs, g, target, ds.Profiles[9], len(plain))
	if err != nil {
		t.Fatal(err)
	}
	if len(boosted) == 0 {
		t.Fatal("no boosted results")
	}
	if boosted[0].ID != plain[len(plain)-1].ID {
		t.Errorf("FoF candidate not promoted: first is %d, want %d",
			boosted[0].ID, plain[len(plain)-1].ID)
	}
}

func TestDynamicFlow(t *testing.T) {
	const n = 300
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	uploads := uploadsFrom(ds, f)
	idx, client, encProfiles, err := f.BuildDynamicIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	cs := cloud.New()
	cs.SetDynIndex(idx)
	cs.PutProfiles(encProfiles)

	target := ds.Profiles[7]
	matches, err := f.DynSearch(client, cs, cs, target, 5, 0)
	if err != nil {
		t.Fatalf("DynSearch: %v", err)
	}
	if len(matches) == 0 || matches[0].ID != 8 {
		t.Fatalf("dynamic search did not find self: %+v", matches)
	}

	// Update user 8's profile: delete, re-insert with new interests.
	meta8 := f.ComputeMeta(ds.Profiles[7])
	if err := client.Delete(cs, 8, meta8); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	cs.DeleteProfile(8)
	newProfile := ds.Profiles[100] // adopt another user's interests
	if err := client.Insert(cs, 8, f.ComputeMeta(newProfile)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	ct, err := f.EncryptProfile(newProfile)
	if err != nil {
		t.Fatal(err)
	}
	cs.PutProfile(8, ct)

	matches, err = f.DynSearch(client, cs, cs, newProfile, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.ID == 8 {
			found = true
		}
	}
	if !found {
		t.Error("updated user not discoverable under new profile")
	}
}

func TestBuildIndexDimMismatch(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = f.BuildIndex([]Upload{{ID: 1, Profile: make([]float64, 3)}})
	if err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestCloudWithoutIndex(t *testing.T) {
	cs := cloud.New()
	if _, _, err := cs.SecRec(&core.Trapdoor{}); err == nil {
		t.Error("SecRec without index accepted")
	}
	if _, err := cs.FetchBuckets(nil); err == nil {
		t.Error("FetchBuckets without index accepted")
	}
	if err := cs.StoreBuckets(nil, nil); err == nil {
		t.Error("StoreBuckets without index accepted")
	}
}

func TestCloudImagesRoundTrip(t *testing.T) {
	cs := cloud.New()
	cs.StoreImages(5, []byte("img-a"), []byte("img-b"))
	got := cs.Images(5)
	if len(got) != 2 || string(got[0]) != "img-a" || string(got[1]) != "img-b" {
		t.Errorf("Images = %q", got)
	}
	// Returned slices are copies.
	got[0][0] = 'X'
	if string(cs.Images(5)[0]) != "img-a" {
		t.Error("Images aliases internal storage")
	}
	if got := cs.Images(99); len(got) != 0 {
		t.Errorf("unknown user images = %v", got)
	}
}

func TestCloudFetchProfilesUnknown(t *testing.T) {
	cs := cloud.New()
	cs.PutProfile(1, []byte("ct"))
	if _, err := cs.FetchProfiles([]uint64{1, 2}); err == nil {
		t.Error("unknown profile fetch accepted")
	}
	got, err := cs.FetchProfiles([]uint64{1})
	if err != nil || string(got[0]) != "ct" {
		t.Errorf("FetchProfiles = %q, %v", got, err)
	}
}

func TestDiscoverBatchWithDecoys(t *testing.T) {
	const n = 300
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	idx, encProfiles, err := f.BuildIndex(uploadsFrom(ds, f))
	if err != nil {
		t.Fatal(err)
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	targets := [][]float64{ds.Profiles[0], ds.Profiles[1], ds.Profiles[2]}
	rng := rand.New(rand.NewSource(5))
	results, err := f.DiscoverWithDecoys(cs, targets, 5, 7, rng)
	if err != nil {
		t.Fatalf("DiscoverWithDecoys: %v", err)
	}
	if len(results) != len(targets) {
		t.Fatalf("results for %d targets", len(results))
	}
	// Batched results must equal unbatched discovery per target.
	for i, target := range targets {
		plain, err := f.Discover(cs, target, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(results[i]) {
			t.Fatalf("target %d: batched %d results vs plain %d", i, len(results[i]), len(plain))
		}
		for r := range plain {
			if plain[r].ID != results[i][r].ID {
				t.Fatalf("target %d rank %d: batched %d vs plain %d", i, r, results[i][r].ID, plain[r].ID)
			}
		}
	}
	// Validation paths.
	if _, err := f.DiscoverWithDecoys(cs, nil, 5, 0, rng); err == nil {
		t.Error("empty targets accepted")
	}
	if _, err := f.DiscoverWithDecoys(cs, targets, 5, -1, rng); err == nil {
		t.Error("negative decoys accepted")
	}
	// Nil rng uses a default.
	if _, err := f.DiscoverWithDecoys(cs, targets[:1], 3, 2, nil); err != nil {
		t.Errorf("nil rng: %v", err)
	}
}

func TestDiscoverMultiProbeImprovesRecall(t *testing.T) {
	const n = 500
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	idx, encProfiles, err := f.BuildIndex(uploadsFrom(ds, f))
	if err != nil {
		t.Fatal(err)
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	queries, _ := ds.Queries(15, 42)
	var plainSum, mpSum float64
	for _, q := range queries {
		plain, err := f.Discover(cs, q, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		mp, err := f.DiscoverMultiProbe(cs, q, 10, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range plain {
			plainSum += m.Distance
		}
		for _, m := range mp {
			mpSum += m.Distance
		}
		if len(mp) < len(plain) {
			t.Fatalf("multi-probe returned fewer results (%d) than plain (%d)", len(mp), len(plain))
		}
	}
	// Multi-probe sees a superset of candidates, so its summed top-10
	// distances cannot be worse.
	if mpSum > plainSum+1e-9 {
		t.Errorf("multi-probe distances %.4f worse than plain %.4f", mpSum, plainSum)
	}
	if _, err := f.DiscoverMultiProbe(cs, queries[0], 5, 0, -1); err == nil {
		t.Error("negative variants accepted")
	}
}

func TestCompactProfilesFlow(t *testing.T) {
	cfg := testConfig()
	cfg.CompactProfiles = true
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, 200)
	idx, encProfiles, err := f.BuildIndex(uploadsFrom(ds, f))
	if err != nil {
		t.Fatal(err)
	}
	// Compact ciphertexts: 4 + 4*dim + overhead.
	for _, ct := range encProfiles {
		if len(ct) >= 4+8*100 {
			t.Fatalf("profile ciphertext %d bytes, not compact", len(ct))
		}
		break
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)
	matches, err := f.Discover(cs, ds.Profiles[0], 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].ID != 1 {
		t.Fatalf("compact discovery results: %+v", matches)
	}
	if matches[0].Distance > 1e-6 {
		t.Errorf("self distance %v under compact encoding", matches[0].Distance)
	}
}

func TestKeyPersistenceAcrossRestart(t *testing.T) {
	// Session 1: build and outsource.
	f1, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, 200)
	idx, encProfiles, err := f1.BuildIndex(uploadsFrom(ds, f1))
	if err != nil {
		t.Fatal(err)
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)
	keyBlob, err := f1.ExportKeys()
	if err != nil {
		t.Fatal(err)
	}
	params, err := f1.IndexParams()
	if err != nil {
		t.Fatal(err)
	}

	// Session 2: a fresh front end restored from the key blob serves the
	// same cloud state.
	f2, err := NewWithKeys(testConfig(), keyBlob)
	if err != nil {
		t.Fatalf("NewWithKeys: %v", err)
	}
	if err := f2.RestoreIndexParams(params); err != nil {
		t.Fatal(err)
	}
	matches, err := f2.Discover(cs, ds.Profiles[3], 5, 0)
	if err != nil {
		t.Fatalf("Discover after restart: %v", err)
	}
	if len(matches) == 0 || matches[0].ID != 4 || matches[0].Distance > 1e-9 {
		t.Fatalf("restored front end results: %+v", matches)
	}

	// Mismatched table count is rejected.
	badCfg := testConfig()
	badCfg.LSH.Tables = 3
	if _, err := NewWithKeys(badCfg, keyBlob); err == nil {
		t.Error("table-count mismatch accepted")
	}
	if err := f2.RestoreIndexParams(core.Params{Tables: 2, Capacity: 10, ProbeRange: 1, MaxLoop: 1}); err == nil {
		t.Error("mismatched index params accepted")
	}
}
