package frontend

import "errors"

// ErrOverloaded is the typed rejection of the serving path's admission
// gate: the frontend already has its configured maximum of discoveries in
// flight and sheds this one instead of queueing it. Callers should treat
// it as retryable after backoff; nothing about the query left the
// frontend, so a rejected discovery leaks nothing to the cloud.
var ErrOverloaded = errors.New("frontend: overloaded, discovery rejected")

// AdmissionGate is a bounded inflight-query semaphore. Overload degrades
// to fast ErrOverloaded rejection instead of unbounded queueing — the
// latency of admitted queries stays flat while excess demand is shed at
// the door. A nil gate (or one built with max <= 0) admits everything and
// only keeps the inflight gauge.
type AdmissionGate struct {
	sem chan struct{}
}

// NewAdmissionGate returns a gate admitting at most max concurrent
// queries; max <= 0 means unbounded.
func NewAdmissionGate(max int) *AdmissionGate {
	if max <= 0 {
		return &AdmissionGate{}
	}
	return &AdmissionGate{sem: make(chan struct{}, max)}
}

// Acquire admits one query or rejects it with ErrOverloaded without
// blocking. Every successful Acquire must be paired with Release.
func (g *AdmissionGate) Acquire() error {
	if g == nil || g.sem == nil {
		fmet.admitInflight.Add(1)
		return nil
	}
	select {
	case g.sem <- struct{}{}:
		fmet.admitInflight.Add(1)
		return nil
	default:
		fmet.admitRejected.Inc()
		return ErrOverloaded
	}
}

// Release returns one admitted query's slot.
func (g *AdmissionGate) Release() {
	fmet.admitInflight.Add(-1)
	if g == nil || g.sem == nil {
		return
	}
	<-g.sem
}
