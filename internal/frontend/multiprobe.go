package frontend

import (
	"fmt"

	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/lsh"
	"pisd/internal/vec"
)

// DiscoverMultiProbe is Discover with query-directed multi-probe recall
// (Lv et al., the paper's [19]): besides the exact trapdoor it issues
// trapdoors for the `variants` cheapest neighbouring-bucket metadata
// vectors, merges the recovered candidates and ranks them together. Each
// variant costs one additional constant-bandwidth round, buying recall —
// the same accuracy/bandwidth dial as raising d or l (Fig. 5(c)), but
// tunable per query without rebuilding the index.
func (f *Frontend) DiscoverMultiProbe(server DiscoveryServer, targetProfile []float64, k int, excludeID uint64, variants int) ([]Match, error) {
	if !f.built {
		return nil, fmt.Errorf("frontend: no index built yet")
	}
	if variants < 0 {
		return nil, fmt.Errorf("frontend: negative variant count")
	}
	metas := []lsh.Metadata{f.family.Hash(targetProfile)}
	for _, pv := range f.family.ProbeSequence(targetProfile, variants) {
		metas = append(metas, pv.Meta)
	}

	seen := make(map[uint64][]byte)
	for _, m := range metas {
		td, err := core.GenTpdr(f.keys, m, f.params)
		if err != nil {
			return nil, err
		}
		ids, encProfiles, err := server.SecRec(td)
		if err != nil {
			return nil, fmt.Errorf("frontend: multi-probe discovery: %w", err)
		}
		for i, id := range ids {
			if _, dup := seen[id]; !dup {
				seen[id] = encProfiles[i]
			}
		}
	}

	tk := vec.NewTopK(k)
	for id, ct := range seen {
		if excludeID != 0 && id == excludeID {
			continue
		}
		s, err := crypt.DecProfile(f.keys.KS, ct)
		if err != nil {
			return nil, fmt.Errorf("frontend: decrypt match %d: %w", id, err)
		}
		tk.Offer(id, vec.Distance(targetProfile, s))
	}
	scored := tk.Sorted()
	out := make([]Match, len(scored))
	for i, s := range scored {
		out[i] = Match{ID: s.ID, Distance: s.Score}
	}
	return out, nil
}
