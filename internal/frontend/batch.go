package frontend

import (
	"fmt"
	"math/rand"

	"pisd/internal/core"
	"pisd/internal/lsh"
	"pisd/internal/obs"
)

// DiscoverWithDecoys implements the paper's batched-discovery mitigation
// (Sec. IV remark): deterministic trapdoors leak the similarity-search
// pattern, and the paper suggests that "to mitigate such statistical
// information leakage, one trick is to batch the social discovery requests
// for multiple randomly selected target users at once". It interleaves the
// real targets' trapdoors with decoy trapdoors for random metadata in a
// shuffled order, issues them all, and unbatches the real results. The
// cloud observes a larger anonymity set per round at the cost of
// proportionally more bandwidth (exactly the trade-off the paper names).
//
// DiscoverWithDecoys is a privacy mechanism; for a throughput mechanism
// that amortises round trips over many real queries see DiscoverBatch.
func (f *Frontend) DiscoverWithDecoys(server DiscoveryServer, targets [][]float64, k, decoys int, rng *rand.Rand) ([][]Match, error) {
	if !f.built {
		return nil, fmt.Errorf("frontend: no index built yet")
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("frontend: no targets")
	}
	if decoys < 0 {
		return nil, fmt.Errorf("frontend: negative decoy count")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}

	type slot struct {
		target  int // index into targets, -1 for decoys
		profile []float64
		meta    lsh.Metadata
	}
	slots := make([]slot, 0, len(targets)+decoys)
	for i, p := range targets {
		slots = append(slots, slot{target: i, profile: p, meta: f.family.Hash(p)})
	}
	for d := 0; d < decoys; d++ {
		meta := make(lsh.Metadata, f.params.Tables)
		for j := range meta {
			meta[j] = rng.Uint64()
		}
		slots = append(slots, slot{target: -1, meta: meta})
	}
	// Shuffle so the cloud cannot separate targets from decoys by order.
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })

	out := make([][]Match, len(targets))
	for _, s := range slots {
		td, err := core.GenTpdr(f.keys, s.meta, f.params)
		if err != nil {
			return nil, err
		}
		ids, encProfiles, err := server.SecRec(td)
		if err != nil {
			return nil, fmt.Errorf("frontend: batched discovery: %w", err)
		}
		if s.target < 0 {
			continue // decoy: result discarded
		}
		matches, err := f.rank(s.profile, ids, encProfiles, k, 0)
		if err != nil {
			return nil, err
		}
		out[s.target] = matches
	}
	return out, nil
}

// BatchDiscoveryServer is the cloud surface the front end drives for
// batched static discovery: one exchange resolving q trapdoors, with
// result q matching what SecRec would return for trapdoor q. cloud.Server
// and the transport client both implement it.
type BatchDiscoveryServer interface {
	SecRecBatch(ts []*core.Trapdoor) (ids [][]uint64, encProfiles [][][]byte, err error)
}

// Trapdoors issues one discovery trapdoor per target profile, hashing and
// PRF evaluation fanned out across CPUs (lsh.Family.Hash is stateless and
// the PRF pools its scratch, so the fan-out is safe). Trapdoor generation
// is deterministic, so the result is identical to calling Trapdoor per
// profile.
func (f *Frontend) Trapdoors(profiles [][]float64) ([]*core.Trapdoor, error) {
	if !f.built {
		return nil, fmt.Errorf("frontend: no index built yet")
	}
	tds := make([]*core.Trapdoor, len(profiles))
	err := parallelFor(len(profiles), func(i int) error {
		td, err := core.GenTpdr(f.keys, f.family.Hash(profiles[i]), f.params)
		if err != nil {
			return fmt.Errorf("frontend: trapdoor %d: %w", i, err)
		}
		tds[i] = td
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tds, nil
}

// DiscoverBatch runs the discovery flow for many target profiles in one
// cloud exchange: parallel trapdoor generation → a single SecRecBatch round
// trip → per-query decrypt/rank fanned out across CPUs. Result q is
// byte-identical to Discover(server, targets[q], k, excludeIDs[q]) against
// the same server. excludeIDs may be nil (exclude nothing); otherwise it
// must align with targets, with 0 meaning no exclusion for that query.
//
// DiscoverBatch amortises round-trip and framing cost over the batch; it
// does not add decoys (see DiscoverWithDecoys for the privacy batching).
func (f *Frontend) DiscoverBatch(server BatchDiscoveryServer, targets [][]float64, k int, excludeIDs []uint64) ([][]Match, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("frontend: no targets")
	}
	if excludeIDs != nil && len(excludeIDs) != len(targets) {
		return nil, fmt.Errorf("frontend: %d targets but %d exclude ids", len(targets), len(excludeIDs))
	}
	var sp obs.Span
	sp.Start()
	tds, err := f.Trapdoors(targets)
	if err != nil {
		return nil, err
	}
	sp.Mark("trapdoor", fmet.trapdoorNs)
	ids, encProfiles, err := server.SecRecBatch(tds)
	if err != nil {
		return nil, fmt.Errorf("frontend: batched discovery request: %w", err)
	}
	if len(ids) != len(targets) || len(encProfiles) != len(targets) {
		return nil, fmt.Errorf("frontend: batch of %d queries answered with %d results", len(targets), len(ids))
	}
	sp.Mark("fanout", fmet.fanoutNs)
	out, err := f.rankBatch(targets, ids, encProfiles, k, excludeIDs)
	if err != nil {
		return nil, err
	}
	sp.Finish(fmet.batchNs)
	fmet.batches.Inc()
	return out, nil
}

// rankBatch ranks every query of a batch, fanning the per-query GetRec
// work across CPUs. Each query's ranking is exactly rank() — parallel over
// queries, deterministic within a query — so per-query output matches the
// serial discovery path byte for byte.
func (f *Frontend) rankBatch(targets [][]float64, ids [][]uint64, encProfiles [][][]byte, k int, excludeIDs []uint64) ([][]Match, error) {
	out := make([][]Match, len(targets))
	err := parallelFor(len(targets), func(q int) error {
		var exclude uint64
		if excludeIDs != nil {
			exclude = excludeIDs[q]
		}
		matches, err := f.rank(targets[q], ids[q], encProfiles[q], k, exclude)
		if err != nil {
			return err
		}
		out[q] = matches
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
