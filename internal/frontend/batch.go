package frontend

import (
	"fmt"
	"math/rand"

	"pisd/internal/core"
	"pisd/internal/lsh"
)

// Batched discovery (Sec. IV remark): deterministic trapdoors leak the
// similarity-search pattern, and the paper suggests that "to mitigate such
// statistical information leakage, one trick is to batch the social
// discovery requests for multiple randomly selected target users at once".
// DiscoverBatch implements that mitigation: it interleaves the real
// targets' trapdoors with decoy trapdoors for random metadata in a
// shuffled order, issues them all, and unbatches the real results. The
// cloud observes a larger anonymity set per round at the cost of
// proportionally more bandwidth (exactly the trade-off the paper names).
func (f *Frontend) DiscoverBatch(server DiscoveryServer, targets [][]float64, k, decoys int, rng *rand.Rand) ([][]Match, error) {
	if !f.built {
		return nil, fmt.Errorf("frontend: no index built yet")
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("frontend: no targets")
	}
	if decoys < 0 {
		return nil, fmt.Errorf("frontend: negative decoy count")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}

	type slot struct {
		target  int // index into targets, -1 for decoys
		profile []float64
		meta    lsh.Metadata
	}
	slots := make([]slot, 0, len(targets)+decoys)
	for i, p := range targets {
		slots = append(slots, slot{target: i, profile: p, meta: f.family.Hash(p)})
	}
	for d := 0; d < decoys; d++ {
		meta := make(lsh.Metadata, f.params.Tables)
		for j := range meta {
			meta[j] = rng.Uint64()
		}
		slots = append(slots, slot{target: -1, meta: meta})
	}
	// Shuffle so the cloud cannot separate targets from decoys by order.
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })

	out := make([][]Match, len(targets))
	for _, s := range slots {
		td, err := core.GenTpdr(f.keys, s.meta, f.params)
		if err != nil {
			return nil, err
		}
		ids, encProfiles, err := server.SecRec(td)
		if err != nil {
			return nil, fmt.Errorf("frontend: batched discovery: %w", err)
		}
		if s.target < 0 {
			continue // decoy: result discarded
		}
		matches, err := f.rank(s.profile, ids, encProfiles, k, 0)
		if err != nil {
			return nil, err
		}
		out[s.target] = matches
	}
	return out, nil
}
