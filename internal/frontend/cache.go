package frontend

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"pisd/internal/core"
)

// CacheKey identifies one result-cache entry: a digest of the exact bytes
// the cloud observes for the query (the trapdoor, or the dynamic scheme's
// bucket references). Two queries share a key iff the cloud could not
// tell them apart either — the similarity-search-pattern leakage of
// Definition 4 — which is what makes caching on this key leakage-free
// (DESIGN.md §15).
type CacheKey [sha256.Size]byte

// trapdoorKey digests a static-scheme trapdoor. Positions and masks are
// fixed-width for fixed params, so the concatenation is injective.
func trapdoorKey(t *core.Trapdoor) CacheKey {
	h := sha256.New()
	var buf [8]byte
	for _, entries := range t.Tables {
		for _, e := range entries {
			binary.LittleEndian.PutUint64(buf[:], e.Pos)
			h.Write(buf[:])
			h.Write(e.Mask)
		}
	}
	for _, m := range t.Stash {
		h.Write(m)
	}
	var k CacheKey
	h.Sum(k[:0])
	return k
}

// refsKey digests the dynamic scheme's bucket-reference list — the read
// set the cloud observes for a dynamic search.
func refsKey(refs []core.BucketRef) CacheKey {
	h := sha256.New()
	var buf [16]byte
	for _, r := range refs {
		binary.LittleEndian.PutUint64(buf[:8], uint64(r.Table))
		binary.LittleEndian.PutUint64(buf[8:], r.Pos)
		h.Write(buf[:])
	}
	var k CacheKey
	h.Sum(k[:0])
	return k
}

// cacheEntry is one cached cloud answer: the candidate identifiers the
// cloud returned and their profiles decrypted ONCE at fill time
// (pre-rank, so one entry serves every k and excludeID), plus the bucket
// references the answer was read from, for exact invalidation under
// dynamic churn. Plaintext profiles live only in trusted-frontend
// memory — the same trust domain as the keys — so caching them adds no
// leakage while sparing every hit the per-candidate MAC + AES work.
type cacheEntry struct {
	key  CacheKey
	refs []core.BucketRef
	ids  []uint64
	vecs [][]float64
}

// ResultCache is a bounded LRU of cloud answers keyed by search pattern.
// It is safe for concurrent use. Entries carry the bucket references they
// were derived from; InvalidateRefs drops every entry whose read set
// intersects a written batch, which the dynamic protocols make exact:
// every mutation round (including each kick of an insert chain) re-seals
// its full fetched batch through StoreBuckets, so hooking that call
// covers every bucket a mutation can touch. A nil *ResultCache is the
// disabled cache: Get always misses and Put is a no-op.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[CacheKey]*list.Element // values are *cacheEntry
	lru     *list.List                 // front = most recently used
	byRef   map[core.BucketRef]map[*cacheEntry]struct{}
}

// NewResultCache returns a cache bounded to max entries; max <= 0 returns
// the disabled (nil) cache.
func NewResultCache(max int) *ResultCache {
	if max <= 0 {
		return nil
	}
	return &ResultCache{
		cap:     max,
		entries: make(map[CacheKey]*list.Element),
		lru:     list.New(),
		byRef:   make(map[core.BucketRef]map[*cacheEntry]struct{}),
	}
}

// Get returns the cached candidate set for key: identifiers and
// decrypted profile vectors. The returned slices are shared with the
// cache and must not be mutated (the rank path only reads them).
func (c *ResultCache) Get(key CacheKey) (ids []uint64, vecs [][]float64, ok bool) {
	if c == nil {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.ids, e.vecs, true
}

// Put stores one decrypted cloud answer under key, recording refs as its
// read set (nil refs means the entry never self-invalidates — correct
// for the static index, which is immutable). Evicts least-recently-used
// entries beyond the bound.
func (c *ResultCache) Put(key CacheKey, refs []core.BucketRef, ids []uint64, vecs [][]float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Refreshed answer for a key already present: replace in place.
		c.remove(el.Value.(*cacheEntry))
	}
	e := &cacheEntry{key: key, refs: refs, ids: ids, vecs: vecs}
	c.entries[key] = c.lru.PushFront(e)
	for _, r := range refs {
		set := c.byRef[r]
		if set == nil {
			set = make(map[*cacheEntry]struct{})
			c.byRef[r] = set
		}
		set[e] = struct{}{}
	}
	for c.lru.Len() > c.cap {
		c.remove(c.lru.Back().Value.(*cacheEntry))
	}
}

// InvalidateRefs drops every entry whose read set intersects refs and
// returns how many were dropped.
func (c *ResultCache) InvalidateRefs(refs []core.BucketRef) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for _, r := range refs {
		for e := range c.byRef[r] {
			c.remove(e)
			dropped++
		}
	}
	if dropped > 0 {
		fmet.cacheInvalids.Add(int64(dropped))
	}
	return dropped
}

// remove unlinks e from the LRU, the key map and the reverse ref index.
// Callers hold c.mu.
func (c *ResultCache) remove(e *cacheEntry) {
	el, ok := c.entries[e.key]
	if !ok || el.Value.(*cacheEntry) != e {
		return
	}
	c.lru.Remove(el)
	delete(c.entries, e.key)
	for _, r := range e.refs {
		if set := c.byRef[r]; set != nil {
			delete(set, e)
			if len(set) == 0 {
				delete(c.byRef, r)
			}
		}
	}
}

// Len returns the live entry count.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Flush empties the cache.
func (c *ResultCache) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[CacheKey]*list.Element)
	c.byRef = make(map[core.BucketRef]map[*cacheEntry]struct{})
	c.lru.Init()
}
