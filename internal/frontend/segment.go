package frontend

import (
	"errors"
	"fmt"

	"pisd/internal/core"
	"pisd/internal/segstore"
)

// Streaming builds. BuildIndex materializes every upload at once; for
// million-profile populations SF instead streams batches through a
// SegmentBuilder, which spills bounded-size encrypted segments to disk as
// it goes. The parameter derivation is byte-for-byte the one prepare()
// uses for a monolithic build over the same population size, so trapdoors
// issued by this front end (or by a later AttachSegmented restart) address
// the segmented index exactly as they would the monolithic one.
//
// Streaming trades away the rehash() step of Algorithm 1: with uploads
// discarded after hashing, SF cannot recompute metadata under fresh LSH
// parameters. Instead the streamed index carries a cuckoo stash (the
// paper's l·(d+1)+stash trapdoor layout) sized as a function of the
// public population size, so kick-chain overflows park there rather than
// forcing a rebuild; only a population that overflows the stash too
// surfaces an error, and such a stream must be re-run with a different
// LSH seed.

// SegmentParams derives the index parameters a build over n uploads uses.
// It is prepare()'s formula with the population size supplied explicitly,
// shared by the streaming builder and the attach path.
func (f *Frontend) SegmentParams(n int) (core.Params, error) {
	if n < 1 {
		return core.Params{}, fmt.Errorf("frontend: population size must be >= 1, got %d", n)
	}
	return core.Params{
		Tables:     f.cfg.LSH.Tables,
		Capacity:   core.CapacityFor(n, f.cfg.LoadFactor),
		ProbeRange: f.cfg.ProbeRange,
		MaxLoop:    f.cfg.MaxLoop,
		Seed:       f.cfg.Seed,
		StashSize:  streamStashSize(n),
	}, nil
}

// streamStashSize is the stash capacity of a streamed index over n
// uploads: large enough that cuckoo overflow at the paper's τ = 0.8 load
// parks there instead of failing the (rehash-free) stream, small enough
// that the extra per-query bandwidth — every trapdoor addresses the whole
// stash — stays in the kilobytes. A function of the public n only, so it
// leaks nothing the index size does not.
func streamStashSize(n int) int { return 64 + n/4096 }

// SegmentBuilder streams upload batches into an on-disk segmented index.
// Batches must arrive with strictly increasing identifiers; each batch
// becomes one generation-0 segment. Not safe for concurrent use.
type SegmentBuilder struct {
	f *Frontend
	b *segstore.Builder
	p core.Params
}

// NewSegmentBuilder starts a streaming build over a population of exactly
// n uploads, writing segments into dir. n fixes the cuckoo capacity up
// front (it is public: the index size reveals it anyway), so batches can
// be placed before the stream ends.
func (f *Frontend) NewSegmentBuilder(n int, dir string) (*SegmentBuilder, error) {
	p, err := f.SegmentParams(n)
	if err != nil {
		return nil, err
	}
	b, err := segstore.NewBuilder(f.keys, p, dir)
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	return &SegmentBuilder{f: f, b: b, p: p}, nil
}

// AddUploads hashes, places, and encrypts one batch. The returned
// ciphertexts align with uploads, ready to forward to the cloud as the
// batch's {S*}; the profiles themselves can then be discarded, which is
// the point of streaming. A core.ErrNeedRehash from placement means the
// stream must be re-run (see the package comment above).
func (sb *SegmentBuilder) AddUploads(uploads []Upload) ([][]byte, error) {
	if len(uploads) == 0 {
		return nil, nil
	}
	items := make([]core.Item, len(uploads))
	for i, u := range uploads {
		meta := u.Meta
		if meta == nil {
			if len(u.Profile) != sb.f.cfg.LSH.Dim {
				return nil, fmt.Errorf("frontend: upload %d profile dim %d, want %d", u.ID, len(u.Profile), sb.f.cfg.LSH.Dim)
			}
			meta = sb.f.family.Hash(u.Profile)
		}
		items[i] = core.Item{ID: u.ID, Meta: meta}
	}
	if err := sb.b.Add(items); err != nil {
		if errors.Is(err, core.ErrNeedRehash) {
			return nil, fmt.Errorf("frontend: streaming build cannot rehash: %w", err)
		}
		return nil, fmt.Errorf("frontend: %w", err)
	}
	return sb.f.encryptProfileSlice(uploads)
}

// Finish encrypts and writes the remaining segments and marks the front
// end as serving the streamed index (trapdoor issue enabled). It returns
// the segment file paths.
func (sb *SegmentBuilder) Finish() ([]string, error) {
	paths, err := sb.b.Finish()
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	sb.f.params = sb.p
	sb.f.built = true
	sb.f.rehashed = false
	return paths, nil
}

// Placement exposes the build's live placement, the Rewriter a compactor
// needs for key-holder-side segment merges.
func (sb *SegmentBuilder) Placement() *core.Placement { return sb.b.Placement() }

// AttachSegmented marks the front end as serving a segmented index built
// earlier (by this or another process) over a population of n uploads with
// this front end's configuration and keys: the restart path for streaming
// deployments. Equivalent to RestoreIndexParams(SegmentParams(n)).
func (f *Frontend) AttachSegmented(n int) error {
	p, err := f.SegmentParams(n)
	if err != nil {
		return err
	}
	return f.RestoreIndexParams(p)
}
