package frontend

import (
	"context"
	"errors"
	"testing"

	"pisd/internal/core"
)

// TestBuildShardedIndexRoutesProfiles checks the partitioned build: shard
// widths and parameters match the single-node build, every upload's
// encrypted profile lands on its owning shard, and nothing is duplicated.
func TestBuildShardedIndexRoutesProfiles(t *testing.T) {
	const n, shards = 200, 4
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	uploads := uploadsFrom(ds, f)

	single, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := single.BuildIndex(uploads)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}

	built, err := f.BuildShardedIndex(uploads, shards, nil)
	if err != nil {
		t.Fatalf("BuildShardedIndex: %v", err)
	}
	if len(built) != shards {
		t.Fatalf("got %d shards, want %d", len(built), shards)
	}
	total := 0
	for s, sh := range built {
		if got, want := sh.Index.Params(), idx.Params(); got != want {
			t.Fatalf("shard %d params %+v differ from single-node %+v", s, got, want)
		}
		for id := range sh.EncProfiles {
			if int(id%shards) != s {
				t.Fatalf("profile %d stored on shard %d, owner is %d", id, s, id%shards)
			}
		}
		total += len(sh.EncProfiles)
	}
	if total != n {
		t.Fatalf("%d profiles routed, want %d", total, n)
	}

	fp, err := f.IndexParams()
	if err != nil {
		t.Fatal(err)
	}
	if fp != idx.Params() {
		t.Fatalf("front end params %+v differ from index %+v", fp, idx.Params())
	}
}

func TestBuildShardedIndexRejectsBadInput(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, 40)
	uploads := uploadsFrom(ds, f)
	if _, err := f.BuildShardedIndex(uploads, 0, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := f.BuildShardedIndex(uploads, 2, func(uint64) int { return 7 }); err == nil {
		t.Fatal("out-of-range owner accepted")
	}
	if _, err := f.BuildShardedDynamicIndex(uploads, 0, nil); err == nil {
		t.Fatal("zero dynamic shards accepted")
	}
	if _, err := f.BuildShardedDynamicIndex(uploads, 2, func(uint64) int { return -1 }); err == nil {
		t.Fatal("negative dynamic owner accepted")
	}
}

// fanoutStub implements FanoutServer with canned results.
type fanoutStub struct {
	ids      []uint64
	profiles [][]byte
	partial  bool
	err      error
}

func (s *fanoutStub) SecRec(context.Context, *core.Trapdoor) ([]uint64, [][]byte, bool, error) {
	return s.ids, s.profiles, s.partial, s.err
}

// TestDiscoverShardedPropagatesPartial checks that the partial flag and
// fan-out errors surface through DiscoverSharded.
func TestDiscoverShardedPropagatesPartial(t *testing.T) {
	const n = 60
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	uploads := uploadsFrom(ds, f)
	if _, _, err := f.BuildIndex(uploads); err != nil {
		t.Fatal(err)
	}

	ct, err := f.EncryptProfile(ds.Profiles[1])
	if err != nil {
		t.Fatal(err)
	}
	stub := &fanoutStub{ids: []uint64{2}, profiles: [][]byte{ct}, partial: true}
	matches, partial, err := f.DiscoverSharded(context.Background(), stub, ds.Profiles[0], 5, 0)
	if err != nil {
		t.Fatalf("DiscoverSharded: %v", err)
	}
	if !partial {
		t.Fatal("partial flag dropped")
	}
	if len(matches) != 1 || matches[0].ID != 2 {
		t.Fatalf("unexpected matches %v", matches)
	}

	stub.err = errors.New("all shards failed")
	if _, _, err := f.DiscoverSharded(context.Background(), stub, ds.Profiles[0], 5, 0); err == nil {
		t.Fatal("fan-out error swallowed")
	}
}

func TestRouteShardValidation(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, 40)
	uploads := uploadsFrom(ds, f)
	dynShards, err := f.BuildShardedDynamicIndex(uploads, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.DynInsertSharded(dynShards, nil, nil, 1, ds.Profiles[0]); err == nil {
		t.Fatal("mismatched shard/node lengths accepted")
	}
	nodes := make([]DynNode, 2)
	if err := f.DynInsertSharded(dynShards, nodes, func(uint64) int { return 9 }, 1, ds.Profiles[0]); err == nil {
		t.Fatal("out-of-range owner accepted")
	}
}
