// Notification-latency measurement harness behind PISD_EXPERIMENTS=1:
// the EXPERIMENTS.md subscription table is produced by this test, so the
// published numbers are reproducible from a single command:
//
//	PISD_EXPERIMENTS=1 go test -run 'TestSubscriptionNotificationLatencyTable' -v -timeout 30m .
//
// For each population n and subscription count S it builds a real
// 2-shard dynamic deployment, registers S standing queries, drives a
// churn wave of inserts and deletes, and reports two latencies per
// configuration: the end-to-end mutation → notification latency (the
// full secure index update plus the frontend evaluation, measured from
// the serving call to the emit callback) and the pure evaluation-hook
// latency from the subs.eval histogram.
package pisd_test

import (
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/obs"
	"pisd/internal/shard"
	"pisd/internal/subs"
)

func TestSubscriptionNotificationLatencyTable(t *testing.T) {
	if os.Getenv("PISD_EXPERIMENTS") == "" {
		t.Skip("measurement harness; run with PISD_EXPERIMENTS=1")
	}
	const dim, shards, churnOps = 100, 2, 200
	fmt.Printf("| n | subscriptions | churn ops | notifications | mut→notify p50 | mut→notify p99 | eval p50 | eval p99 |\n")
	fmt.Printf("|---|---|---|---|---|---|---|---|\n")
	for _, n := range []int{10_000, 100_000} {
		for _, S := range []int{100, 1000} {
			runNotifLatencyCell(t, n, dim, shards, S, churnOps)
		}
	}
}

func runNotifLatencyCell(t *testing.T, n, dim, shards, S, churnOps int) {
	t.Helper()
	sreg := obs.NewRegistry()
	subs.SetRegistry(sreg)
	defer subs.SetRegistry(obs.Default)

	cfg := frontend.ConfigForPopulation(dim, n)
	cfg.MaxLoop = 4000
	cfg.Seed = int64(n)
	cfg.KeySeed = fmt.Sprintf("notif-latency-%d", n)
	f, err := frontend.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Config{
		Users: n + churnOps, Dim: dim, Topics: dataset.AutoTopics(n), TopicsPerUser: 2,
		ActiveWords: dim / 12, Noise: 0.02, PersonalWeight: 0.6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]frontend.Upload, n)
	for i := 0; i < n; i++ {
		uploads[i] = frontend.Upload{ID: uint64(i + 1), Profile: ds.Profiles[i], Meta: f.ComputeMeta(ds.Profiles[i])}
	}
	built, err := f.BuildShardedDynamicIndex(uploads, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]frontend.DynNode, shards)
	for s := range built {
		cs := cloud.New()
		cs.SetDynIndex(built[s].Index)
		cs.PutProfiles(built[s].EncProfiles)
		nodes[s] = shard.NewLocal(cs)
	}
	serving, err := f.NewDynServing(built, nodes, nil, frontend.ServingConfig{CacheEntries: 4096})
	if err != nil {
		t.Fatal(err)
	}

	// Mutation → notification latency: stamped in the emit callback, which
	// runs synchronously under the mutation that caused it.
	var mutStart time.Time
	var lats []time.Duration
	serving.AttachSubscriptions(func(subs.Notification) {
		lats = append(lats, time.Since(mutStart))
	})
	for i := 1; i <= S; i++ {
		if _, err := serving.Subscribe(uint64(i), ds.Profiles[i-1], 5); err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
	}

	var inserted []uint64
	for j := 0; j < churnOps; j++ {
		id := uint64(n + j + 1)
		mutStart = time.Now()
		if err := serving.Insert(id, ds.Profiles[n+j]); err != nil {
			t.Fatalf("insert %d: %v", id, err)
		}
		inserted = append(inserted, id)
		if j%4 == 3 {
			victim := inserted[0]
			inserted = inserted[1:]
			mutStart = time.Now()
			if err := serving.Delete(victim, ds.Profiles[victim-1]); err != nil {
				t.Fatalf("delete %d: %v", victim, err)
			}
		}
	}

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) string {
		if len(lats) == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f µs", float64(lats[int(p*float64(len(lats)-1))].Microseconds()))
	}
	snap := sreg.Snapshot().Flatten()
	fmt.Printf("| %d | %d | %d | %d | %s | %s | %.0f µs | %.0f µs |\n",
		n, S, churnOps, len(lats), pct(0.50), pct(0.99),
		float64(snap["subs.eval_p50_ns"])/1e3, float64(snap["subs.eval_p99_ns"])/1e3)
}
