package pisd

import (
	"math/rand"
	"testing"

	"pisd/internal/dataset"
	"pisd/internal/sharing"
	"pisd/internal/surf"
	"pisd/internal/vec"
)

func testVocabulary(t *testing.T, words int) *Vocabulary {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var sample []Descriptor
	for _, topic := range AllTopics()[:4] {
		for i := 0; i < 3; i++ {
			im, err := RenderTopicImage(topic, int64(i), 96, 96)
			if err != nil {
				t.Fatal(err)
			}
			descs, err := surf.Extract(im, surf.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			sample = append(sample, descs...)
		}
	}
	_ = rng
	vocab, err := TrainVocabulary(sample, words)
	if err != nil {
		t.Fatal(err)
	}
	return vocab
}

func TestGenKeys(t *testing.T) {
	keys, err := GenKeys(10)
	if err != nil {
		t.Fatal(err)
	}
	if keys.NumTables() != 10 {
		t.Errorf("NumTables = %d", keys.NumTables())
	}
	if _, err := GenKeys(0); err == nil {
		t.Error("GenKeys(0) accepted")
	}
}

func TestNewUserValidation(t *testing.T) {
	vocab := testVocabulary(t, 32)
	if _, err := NewUser(1, nil, LSHParams{Dim: 32, Tables: 2, Atoms: 1, Width: 1}); err == nil {
		t.Error("nil vocabulary accepted")
	}
	if _, err := NewUser(1, vocab, LSHParams{Dim: 99, Tables: 2, Atoms: 1, Width: 1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := NewUser(1, vocab, LSHParams{Dim: 32, Tables: 0, Atoms: 1, Width: 1}); err == nil {
		t.Error("invalid LSH params accepted")
	}
}

func TestUserGenProfAndUpload(t *testing.T) {
	vocab := testVocabulary(t, 32)
	params := LSHParams{Dim: 32, Tables: 4, Atoms: 2, Width: 0.8, Seed: 1}
	user, err := NewUser(7, vocab, params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := user.GenProf(nil); err == nil {
		t.Error("empty image set accepted")
	}
	images := make([]*Image, 3)
	for i := range images {
		im, err := RenderTopicImage(Topic(1), int64(i+50), 96, 96)
		if err != nil {
			t.Fatal(err)
		}
		images[i] = im
	}
	up, err := user.Upload(images)
	if err != nil {
		t.Fatal(err)
	}
	if up.ID != 7 {
		t.Errorf("upload id = %d", up.ID)
	}
	if len(up.Profile) != 32 || len(up.Meta) != 4 {
		t.Errorf("upload shape: profile %d, meta %d", len(up.Profile), len(up.Meta))
	}
	if n := vec.Norm(up.Profile); n < 0.99 || n > 1.01 {
		t.Errorf("profile norm %v", n)
	}
	// ComputeLSH matches the metadata Upload produced.
	if !user.ComputeLSH(up.Profile).Equal(up.Meta) {
		t.Error("Upload metadata inconsistent with ComputeLSH")
	}
}

func TestSystemEndToEnd(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Users: 600, Dim: 200, Topics: 10, TopicsPerUser: 2,
		ActiveWords: 25, Noise: 0.02, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSystemConfig(200)
	cfg.Frontend.KeySeed = "pisd-test"
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]Upload, len(ds.Profiles))
	for i, p := range ds.Profiles {
		uploads[i] = Upload{ID: uint64(i + 1), Profile: p, Meta: sys.SF.ComputeMeta(p)}
	}
	if err := sys.AddProfiles(uploads); err != nil {
		t.Fatal(err)
	}
	matches, err := sys.Discover(ds.Profiles[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].ID != 1 {
		t.Fatalf("self not found: %+v", matches)
	}
	matches, err = sys.DiscoverFor(1, ds.Profiles[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.ID == 1 {
			t.Error("excluded self returned")
		}
	}
	// FoF variant runs.
	g := NewSocialGraph()
	g.AddFriendship(1, 2)
	g.AddFriendship(2, 3)
	if _, err := sys.DiscoverFoF(g, 1, ds.Profiles[0], 5); err != nil {
		t.Fatal(err)
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	cfg := DefaultSystemConfig(100)
	cfg.Frontend.LoadFactor = 2
	if _, err := NewSystem(cfg); err == nil {
		t.Error("bad config accepted")
	}
}

func TestSystemDiscoverGroups(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Users: 400, Dim: 200, Topics: 6, TopicsPerUser: 1,
		ActiveWords: 25, Noise: 0.02, PersonalWeight: 0.3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSystemConfig(200)
	cfg.Frontend.KeySeed = "pisd-groups-test"
	cfg.Frontend.LSH.Atoms = 2
	cfg.Frontend.LSH.Width = 0.8
	cfg.Frontend.ProbeRange = 8
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]Upload, len(ds.Profiles))
	members := make(map[uint64][]float64, len(ds.Profiles))
	for i, p := range ds.Profiles {
		uploads[i] = Upload{ID: uint64(i + 1), Profile: p, Meta: sys.SF.ComputeMeta(p)}
		members[uint64(i+1)] = p
	}
	if err := sys.AddProfiles(uploads); err != nil {
		t.Fatal(err)
	}
	found, err := sys.DiscoverGroups(members, 5, DefaultGroupOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("no groups discovered")
	}
	// Groups must be overwhelmingly topic-pure: members of one group
	// share the single topic their profiles are built from.
	pure, total := 0, 0
	for _, g := range found {
		if len(g.Members) < 3 {
			continue
		}
		counts := map[int]int{}
		for _, m := range g.Members {
			counts[ds.UserTopics[m-1][0]]++
		}
		max := 0
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		pure += max
		total += len(g.Members)
	}
	if total == 0 {
		t.Skip("no groups of size >= 3 at this scale")
	}
	if frac := float64(pure) / float64(total); frac < 0.8 {
		t.Errorf("group topic purity %.2f below 0.8", frac)
	}
}

func TestUserImageEncryption(t *testing.T) {
	vocab := testVocabulary(t, 32)
	user, err := NewUser(3, vocab, LSHParams{Dim: 32, Tables: 4, Atoms: 2, Width: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	authority := sharing.NewAuthorityFromSeed("user-images-test")
	im, err := RenderTopicImage(Topic(1), 5, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := user.EncryptImage(authority, sharing.AllOf("friend"), im)
	if err != nil {
		t.Fatalf("EncryptImage: %v", err)
	}
	friend := authority.IssueKeys([]sharing.Attribute{"friend"})
	got, err := DecryptImage(friend, enc)
	if err != nil {
		t.Fatalf("DecryptImage: %v", err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("decrypted shape %dx%d", got.W, got.H)
	}
	stranger := authority.IssueKeys([]sharing.Attribute{"nobody"})
	if _, err := DecryptImage(stranger, enc); err == nil {
		t.Error("stranger decrypted the image")
	}
	if _, err := user.EncryptImage(nil, sharing.AllOf("friend"), im); err == nil {
		t.Error("nil authority accepted")
	}
	if _, err := DecryptImage(friend, nil); err == nil {
		t.Error("nil encrypted image accepted")
	}
}
