// Group discovery: the paper's second motivating application — finding
// social groups with shared interests from encrypted profiles. The front
// end runs its ordinary privacy-preserving per-user discovery and clusters
// the mutual neighbourhoods; the cloud sees nothing beyond trapdoors.
//
//	go run ./examples/groups
package main

import (
	"fmt"
	"log"

	"pisd"
	"pisd/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A population with pronounced interest communities.
	ds, err := dataset.Generate(dataset.Config{
		Users: 1200, Dim: 400, Topics: 12, TopicsPerUser: 1,
		ActiveWords: 40, Noise: 0.02, PersonalWeight: 0.3, Seed: 21,
	})
	if err != nil {
		return err
	}

	cfg := pisd.DefaultSystemConfig(400)
	cfg.Frontend.LSH.Atoms = 2
	cfg.Frontend.LSH.Width = 0.8
	cfg.Frontend.ProbeRange = 8
	sys, err := pisd.NewSystem(cfg)
	if err != nil {
		return err
	}
	uploads := make([]pisd.Upload, len(ds.Profiles))
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sys.SF.ComputeMeta(p)}
	}
	if err := sys.AddProfiles(uploads); err != nil {
		return err
	}

	// Discover groups across the whole population: one ordinary
	// privacy-preserving discovery per user, then mutual-kNN clustering.
	members := make(map[uint64][]float64, len(ds.Profiles))
	for i, p := range ds.Profiles {
		members[uint64(i+1)] = p
	}
	opts := pisd.DefaultGroupOptions()
	opts.MinSize = 4
	groups, err := sys.DiscoverGroups(members, 6, opts)
	if err != nil {
		return err
	}

	fmt.Printf("discovered %d social groups among %d users:\n\n", len(groups), len(members))
	show := groups
	if len(show) > 8 {
		show = show[:8]
	}
	for gi, g := range show {
		// Majority topic of the group, for the human-readable label.
		counts := map[int]int{}
		for _, m := range g.Members {
			for _, t := range ds.UserTopics[m-1] {
				counts[t]++
			}
		}
		best, bestN := -1, 0
		for t, n := range counts {
			if n > bestN {
				best, bestN = t, n
			}
		}
		fmt.Printf("group %d: %d members, cohesion %.3f, dominant topic %d (%d/%d members)\n",
			gi+1, len(g.Members), g.Cohesion, best, bestN, len(g.Members))
		fmt.Printf("  members: %v\n", g.Members)
	}
	return nil
}
