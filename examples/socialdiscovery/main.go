// Social discovery over real (procedurally rendered) images: the complete
// paper pipeline. Users photograph topics; their clients extract SURF
// features, quantize against a shared visual-word vocabulary, and upload
// (S, V). The front end builds the secure index and discovers users with
// matching interests — the qualitative experiment of the paper's Fig. 3.
//
//	go run ./examples/socialdiscovery
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pisd"
	"pisd/internal/surf"
)

const (
	numUsers      = 150
	imagesPerUser = 5
	vocabWords    = 128
	imageSize     = 96
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	topics := pisd.AllTopics()

	// 1. The front end trains the shared vocabulary Δ on a sample of
	//    descriptors from a public image corpus.
	fmt.Println("training visual-word vocabulary ...")
	var sample []pisd.Descriptor
	for _, topic := range topics {
		for i := 0; i < 6; i++ {
			im, err := pisd.RenderTopicImage(topic, int64(1000+i), imageSize, imageSize)
			if err != nil {
				return err
			}
			descs, err := surf.Extract(im, surf.DefaultOptions())
			if err != nil {
				return err
			}
			sample = append(sample, descs...)
		}
	}
	vocab, err := pisd.TrainVocabulary(sample, vocabWords)
	if err != nil {
		return err
	}
	fmt.Printf("vocabulary: %d visual words (%d descriptors sampled)\n", vocab.Size(), len(sample))

	// 2. The front end + cloud, sharing LSH parameters with users. BoW
	//    profiles want a slightly coarser LSH than the library default:
	//    2 atoms at width 0.8 recall same-topic users reliably.
	cfg := pisd.DefaultSystemConfig(vocab.Size())
	cfg.Frontend.LSH.Atoms = 2
	cfg.Frontend.LSH.Width = 0.8
	cfg.Frontend.ProbeRange = 6
	sys, err := pisd.NewSystem(cfg)
	if err != nil {
		return err
	}
	lshParams := sys.SF.SharedLSHParams()

	// 3. Every user photographs two topics, runs GenProf + ComputeLSH
	//    locally and uploads. User 1 is the paper's flower+dog exemplar.
	fmt.Printf("generating %d users x %d images ...\n", numUsers, imagesPerUser)
	userTopics := make([][2]pisd.Topic, numUsers)
	userTopics[0] = [2]pisd.Topic{pisd.Topic(1), pisd.Topic(2)} // flower, dog
	for i := 1; i < numUsers; i++ {
		userTopics[i] = [2]pisd.Topic{
			topics[rng.Intn(len(topics))],
			topics[rng.Intn(len(topics))],
		}
	}
	uploads := make([]pisd.Upload, numUsers)
	for i := 0; i < numUsers; i++ {
		user, err := pisd.NewUser(uint64(i+1), vocab, lshParams)
		if err != nil {
			return err
		}
		images := make([]*pisd.Image, imagesPerUser)
		for k := range images {
			topic := userTopics[i][k%2]
			im, err := pisd.RenderTopicImage(topic, rng.Int63(), imageSize, imageSize)
			if err != nil {
				return err
			}
			images[k] = im
		}
		up, err := user.Upload(images)
		if err != nil {
			return err
		}
		uploads[i] = up
	}

	// 4. Service frontend initialization.
	if err := sys.AddProfiles(uploads); err != nil {
		return err
	}

	// 5. Discovery for the flower+dog user.
	matches, err := sys.DiscoverFor(1, uploads[0].Profile, 5)
	if err != nil {
		return err
	}
	fmt.Printf("\ntarget user 1 photographs: %v + %v\n", userTopics[0][0], userTopics[0][1])
	fmt.Println("top-5 securely discovered users:")
	shared := 0
	for rank, m := range matches {
		ut := userTopics[m.ID-1]
		overlap := ut[0] == userTopics[0][0] || ut[0] == userTopics[0][1] ||
			ut[1] == userTopics[0][0] || ut[1] == userTopics[0][1]
		marker := " "
		if overlap {
			marker = "*"
			shared++
		}
		fmt.Printf("  %d. user %-4d (%v + %v) distance %.4f %s\n",
			rank+1, m.ID, ut[0], ut[1], m.Distance, marker)
	}
	fmt.Printf("%d/%d recommendations share a topic with the target (* = shared)\n", shared, len(matches))
	return nil
}
