// Distributed deployment: the cloud server CS runs as a TCP service, the
// front end SF talks to it over the wire, and users share encrypted images
// under attribute policies (Sec. III-E compatibility).
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pisd"
	"pisd/internal/dataset"
	"pisd/internal/sharing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Cloud side: an untrusted TCP service holding only ciphertext.
	cloud := pisd.NewCloud()
	server := pisd.NewCloudServer(cloud)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	fmt.Printf("cloud server listening at %s\n", addr)

	// --- Front-end side.
	sf, err := pisd.NewFrontend(pisd.DefaultFrontendConfig(400))
	if err != nil {
		return err
	}
	client, err := pisd.DialCloud(addr)
	if err != nil {
		return err
	}
	defer client.Close()

	ds, err := dataset.Generate(dataset.Config{
		Users: 1000, Dim: 400, Topics: 12, TopicsPerUser: 2,
		ActiveWords: 40, Noise: 0.02, Seed: 3,
	})
	if err != nil {
		return err
	}
	uploads := make([]pisd.Upload, len(ds.Profiles))
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
	}
	idx, encProfiles, err := sf.BuildIndex(uploads)
	if err != nil {
		return err
	}
	if err := client.InstallIndex(idx); err != nil {
		return err
	}
	if err := client.PutProfiles(encProfiles); err != nil {
		return err
	}
	fmt.Printf("outsourced index (%0.1f KB) and %d encrypted profiles over TCP\n",
		float64(idx.SizeBytes())/1024, len(encProfiles))

	// --- A user shares an encrypted image under an attribute policy and
	//     uploads it directly to the cloud (service flow step 1).
	authority, err := pisd.NewSharingAuthority()
	if err != nil {
		return err
	}
	image := []byte("...image bytes of my 2013 graduation photo...")
	ct, err := authority.Encrypt(sharing.AllOf("family", "college/2013"), image)
	if err != nil {
		return err
	}
	if err := client.StoreImage(7, ct.Payload); err != nil {
		return err
	}
	fmt.Println("user 7 uploaded a policy-protected encrypted image")

	// A friend holding both attributes decrypts; a stranger cannot.
	friend := authority.IssueKeys([]sharing.Attribute{"family", "college/2013"})
	if _, err := sharing.Decrypt(friend, ct); err != nil {
		return fmt.Errorf("friend should decrypt: %w", err)
	}
	stranger := authority.IssueKeys([]sharing.Attribute{"coworker"})
	if _, err := sharing.Decrypt(stranger, ct); err == nil {
		return fmt.Errorf("stranger decrypted the shared image")
	}
	fmt.Println("sharing policy enforced: friend decrypts, stranger denied")

	// --- Remote privacy-preserving discovery, with traffic accounting.
	sentBefore, recvBefore := client.Traffic()
	matches, err := sf.Discover(client, ds.Profiles[4], 5, 5)
	if err != nil {
		return err
	}
	sentAfter, recvAfter := client.Traffic()
	fmt.Printf("\ndiscovery for user 5 over TCP (%d B up, %d B down):\n",
		sentAfter-sentBefore, recvAfter-recvBefore)
	for rank, m := range matches {
		fmt.Printf("  %d. user %-5d distance %.4f topics %v\n",
			rank+1, m.ID, m.Distance, ds.UserTopics[m.ID-1])
	}
	return nil
}
