// Sharded deployment: the cloud tier runs as four TCP shard servers, each
// holding a projection of the secure index for the users it owns. The
// front end builds all four shard indexes from one global cuckoo
// placement, installs them, and fans every discovery trapdoor out to all
// shards in parallel. The demo verifies the headline property — the
// merged fan-out result is identical to a single-node deployment — and
// then kills one shard to show graceful degradation to a flagged partial
// result.
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pisd"
	"pisd/internal/dataset"
)

const (
	users   = 800
	dim     = 400
	nShards = 4
	topK    = 5
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Cloud tier: four independent shard servers, ciphertext only.
	servers := make([]*pisd.CloudServer, nShards)
	nodes := make([]pisd.ShardNode, nShards)
	for s := 0; s < nShards; s++ {
		srv := pisd.NewCloudServer(pisd.NewCloud())
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		servers[s] = srv
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		remote := pisd.NewRemoteShard(addr)
		defer remote.Close()
		nodes[s] = remote
		fmt.Printf("cloud shard %d listening at %s\n", s, addr)
	}
	pool, err := pisd.NewShardPool(pisd.DefaultShardPoolConfig(), nodes...)
	if err != nil {
		return err
	}

	// --- Front end: one global placement, one projected index per shard.
	sf, err := pisd.NewFrontend(pisd.DefaultFrontendConfig(dim))
	if err != nil {
		return err
	}
	ds, err := dataset.Generate(dataset.Config{
		Users: users, Dim: dim, Topics: 12, TopicsPerUser: 2,
		ActiveWords: 40, Noise: 0.02, Seed: 3,
	})
	if err != nil {
		return err
	}
	uploads := make([]pisd.Upload, len(ds.Profiles))
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
	}
	start := time.Now()
	shards, err := sf.BuildShardedIndex(uploads, nShards, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nbuilt %d projected shard indexes in %s\n", nShards, time.Since(start).Round(time.Millisecond))
	for s, sh := range shards {
		if err := pool.InstallShard(s, sh.Index, sh.EncProfiles); err != nil {
			return err
		}
		fmt.Printf("shard %d: %d encrypted profiles, index %.1f KB\n",
			s, len(sh.EncProfiles), float64(sh.Index.SizeBytes())/1024)
	}

	// --- Reference: the same dataset on a single in-process cloud node.
	single := pisd.NewCloud()
	idx, encProfiles, err := sf.BuildIndex(uploads)
	if err != nil {
		return err
	}
	single.SetIndex(idx)
	single.PutProfiles(encProfiles)

	// --- Fan-out discovery equals single-node discovery, user by user.
	target := uploads[4].Profile
	want, err := sf.Discover(single, target, topK, 5)
	if err != nil {
		return err
	}
	got, partial, err := sf.DiscoverSharded(context.Background(), pool, target, topK, 5)
	if err != nil {
		return err
	}
	if partial {
		return fmt.Errorf("unexpected partial result with all shards alive")
	}
	fmt.Printf("\nfan-out discovery for user 5 (all %d shards alive):\n", nShards)
	for rank, m := range got {
		if m.ID != want[rank].ID {
			return fmt.Errorf("rank %d: sharded %d != single-node %d", rank, m.ID, want[rank].ID)
		}
		fmt.Printf("  %d. user %-5d distance %.4f topics %v   (matches single-node)\n",
			rank+1, m.ID, m.Distance, ds.UserTopics[m.ID-1])
	}

	// --- Kill a shard: discovery degrades to a flagged partial result
	//     covering the surviving shards' users.
	dead := 2
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := servers[dead].Shutdown(ctx); err != nil {
		return err
	}
	fmt.Printf("\nshard %d killed\n", dead)
	got, partial, err = sf.DiscoverSharded(context.Background(), pool, target, topK, 5)
	if err != nil {
		return err
	}
	if !partial {
		return fmt.Errorf("expected a partial result with shard %d dead", dead)
	}
	fmt.Printf("fan-out discovery for user 5 [PARTIAL — shard %d unreachable]:\n", dead)
	for rank, m := range got {
		if pool.Owner(m.ID) == dead {
			return fmt.Errorf("result contains user %d owned by the dead shard", m.ID)
		}
		fmt.Printf("  %d. user %-5d distance %.4f topics %v\n",
			rank+1, m.ID, m.Distance, ds.UserTopics[m.ID-1])
	}
	for s, err := range pool.Ping(context.Background()) {
		state := "healthy"
		if err != nil {
			state = "DOWN"
		}
		fmt.Printf("shard %d: %s\n", s, state)
	}
	return nil
}
