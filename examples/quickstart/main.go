// Quickstart: build a privacy-preserving social discovery system over a
// synthetic population of user image profiles and run one discovery.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pisd"
	"pisd/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A population of 2000 users whose image profiles cluster by interest
	// topic (the structure real Bag-of-Words profiles have).
	ds, err := dataset.Generate(dataset.Config{
		Users: 2000, Dim: 500, Topics: 20, TopicsPerUser: 2,
		ActiveWords: 50, Noise: 0.02, Seed: 42,
	})
	if err != nil {
		return err
	}

	// The service front end (trusted) plus an in-process cloud (untrusted).
	cfg := pisd.DefaultSystemConfig(500)
	sys, err := pisd.NewSystem(cfg)
	if err != nil {
		return err
	}

	// Service frontend initialization: every user uploads (S, V); SF
	// builds the secure index and outsources ciphertext to the cloud.
	uploads := make([]pisd.Upload, len(ds.Profiles))
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{
			ID:      uint64(i + 1),
			Profile: p,
			Meta:    sys.SF.ComputeMeta(p),
		}
	}
	if err := sys.AddProfiles(uploads); err != nil {
		return err
	}
	fmt.Printf("indexed %d encrypted profiles; cloud stores %s of index\n",
		len(uploads), byteSize(sys.CS.IndexSizeBytes()))

	// Privacy-preserving discovery for user 1: the cloud sees only a
	// trapdoor and returns encrypted matches; SF decrypts and ranks.
	target := uint64(1)
	matches, err := sys.DiscoverFor(target, ds.Profiles[0], 5)
	if err != nil {
		return err
	}
	fmt.Printf("top-%d recommendations for user %d (topics %v):\n", len(matches), target, ds.UserTopics[0])
	for rank, m := range matches {
		fmt.Printf("  %d. user %-5d distance %.4f topics %v\n",
			rank+1, m.ID, m.Distance, ds.UserTopics[m.ID-1])
	}
	return nil
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
