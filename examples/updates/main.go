// User profile update (Sec. III-D): build the dynamic secure index, then
// run secure deletion and secure insertion when a user's interests change
// — every touched bucket is re-masked so the cloud cannot tell which
// bucket actually changed.
//
//	go run ./examples/updates
package main

import (
	"fmt"
	"log"

	"pisd"
	"pisd/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds, err := dataset.Generate(dataset.Config{
		Users: 1500, Dim: 400, Topics: 15, TopicsPerUser: 2,
		ActiveWords: 40, Noise: 0.02, Seed: 11,
	})
	if err != nil {
		return err
	}

	cfg := pisd.DefaultFrontendConfig(400)
	sf, err := pisd.NewFrontend(cfg)
	if err != nil {
		return err
	}
	cs := pisd.NewCloud()

	uploads := make([]pisd.Upload, len(ds.Profiles))
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
	}
	dynIdx, dynClient, encProfiles, err := sf.BuildDynamicIndex(uploads)
	if err != nil {
		return err
	}
	cs.SetDynIndex(dynIdx)
	cs.PutProfiles(encProfiles)
	fmt.Printf("dynamic index over %d users installed at the cloud\n", len(uploads))

	// User 42's current interests.
	const userID = 42
	oldProfile := ds.Profiles[userID-1]
	matches, err := sf.DynSearch(dynClient, cs, cs, oldProfile, 5, userID)
	if err != nil {
		return err
	}
	fmt.Printf("before update, user %d (topics %v) matches:\n", userID, ds.UserTopics[userID-1])
	printMatches(matches, ds)

	// The user uploads new pictures: adopt user 900's interest profile.
	newProfile := ds.Profiles[899]
	fmt.Printf("\nuser %d updates interests to topics %v\n", userID, ds.UserTopics[899])

	// Secure deletion of the outdated profile...
	if err := dynClient.Delete(cs, userID, sf.ComputeMeta(oldProfile)); err != nil {
		return err
	}
	cs.DeleteProfile(userID)
	// ...then secure insertion of the new one.
	if err := dynClient.Insert(cs, userID, sf.ComputeMeta(newProfile)); err != nil {
		return err
	}
	ct, err := sf.EncryptProfile(newProfile)
	if err != nil {
		return err
	}
	cs.PutProfile(userID, ct)

	matches, err = sf.DynSearch(dynClient, cs, cs, newProfile, 5, userID)
	if err != nil {
		return err
	}
	fmt.Printf("after update, user %d matches:\n", userID)
	printMatches(matches, ds)

	st := dynClient.Stats()
	fmt.Printf("\nupdate protocol stats: %d interaction rounds, %d kick-aways\n", st.Rounds, st.Kicks)
	return nil
}

func printMatches(matches []pisd.Match, ds *dataset.Dataset) {
	for rank, m := range matches {
		fmt.Printf("  %d. user %-5d distance %.4f topics %v\n",
			rank+1, m.ID, m.Distance, ds.UserTopics[m.ID-1])
	}
}
