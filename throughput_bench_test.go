// Sustained-throughput benchmarks for the serving stack: full
// privacy-preserving discoveries (trapdoor → SecRec over TCP → decrypt →
// rank) against a transport server on the Fig. 3 workload, measured as
// queries per second with p50/p99 latency.
//
// Three operating points bracket the serving design space:
//
//   - DiscoverySerial: one client, lockstep request/response — the
//     pre-multiplexing baseline (at most 1/RTT queries per connection).
//   - Discovery: many goroutines pipelining on ONE shared connection via
//     the request-ID-multiplexed transport; -cpu scales the concurrency.
//   - DiscoverBatch: batches of trapdoors amortized over one SecRecBatch
//     round trip per batch.
package pisd

import (
	"context"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/shard"
	"pisd/internal/transport"
)

type throughputFixture struct {
	cfg     frontend.Config
	sf      *frontend.Frontend
	addr    string
	queries [][]float64
}

const tputN, tputDim = 5000, 1000

var (
	tputOnce sync.Once
	tput     *throughputFixture
	tputErr  error

	tunedTputOnce sync.Once
	tunedTput     *throughputFixture
	tunedTputErr  error
)

// buildThroughputFixture builds the Fig. 3 workload — 5000 users with
// 1000-dim topic-structured profiles, secure index and encrypted profiles
// installed on a cloud server behind a TCP transport — under the given
// front-end configuration. The server lives for the whole bench binary run.
func buildThroughputFixture(cfg frontend.Config) (*throughputFixture, error) {
	sf, err := frontend.New(cfg)
	if err != nil {
		return nil, err
	}
	dcfg := dataset.DefaultConfig(tputN)
	dcfg.Dim = tputDim
	ds, err := dataset.Generate(dcfg)
	if err != nil {
		return nil, err
	}
	uploads := make([]frontend.Upload, tputN)
	for i, p := range ds.Profiles {
		uploads[i] = frontend.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
	}
	idx, encProfiles, err := sf.BuildIndex(uploads)
	if err != nil {
		return nil, err
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)
	srv := transport.NewServer(cs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	queries, _ := ds.Queries(64, 5)
	return &throughputFixture{cfg: cfg, sf: sf, addr: addr, queries: queries}, nil
}

// getThroughputFixture returns the shared PR7-defaults fixture.
func getThroughputFixture(b *testing.B) *throughputFixture {
	b.Helper()
	tputOnce.Do(func() {
		cfg := frontend.DefaultConfig(tputDim)
		// d=10 as in BenchmarkFig3_Discovery: the synthetic topic clusters
		// need more probing headroom than the paper's rendered images.
		cfg.ProbeRange = 10
		cfg.MaxLoop = 2000
		cfg.KeySeed = "throughput-bench"
		tput, tputErr = buildThroughputFixture(cfg)
	})
	if tputErr != nil {
		b.Fatalf("throughput fixture: %v", tputErr)
	}
	return tput
}

// getTunedThroughputFixture returns the fixture built under the
// autotuner's population-tiered operating point (ConfigForPopulation) —
// the same workload as the defaults fixture, so a qps delta between the
// two isolates the tuned (l, atoms, W, d) choice.
func getTunedThroughputFixture(b *testing.B) *throughputFixture {
	b.Helper()
	tunedTputOnce.Do(func() {
		cfg := frontend.ConfigForPopulation(tputDim, tputN)
		cfg.MaxLoop = 2000
		cfg.KeySeed = "throughput-bench-tuned"
		tunedTput, tunedTputErr = buildThroughputFixture(cfg)
	})
	if tunedTputErr != nil {
		b.Fatalf("tuned throughput fixture: %v", tunedTputErr)
	}
	return tunedTput
}

// latRecorder accumulates per-query latencies concurrently and reports
// QPS and percentile metrics.
type latRecorder struct {
	mu   sync.Mutex
	lats []time.Duration
}

func (r *latRecorder) observe(d time.Duration) {
	r.mu.Lock()
	r.lats = append(r.lats, d)
	r.mu.Unlock()
}

// report emits qps, p50_us and p99_us for the elapsed wall time.
func (r *latRecorder) report(b *testing.B, elapsed time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.lats) == 0 || elapsed <= 0 {
		return
	}
	b.ReportMetric(float64(len(r.lats))/elapsed.Seconds(), "qps")
	sort.Slice(r.lats, func(i, j int) bool { return r.lats[i] < r.lats[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(r.lats)-1))
		return float64(r.lats[i].Microseconds())
	}
	b.ReportMetric(pct(0.50), "p50_us")
	b.ReportMetric(pct(0.99), "p99_us")
}

// BenchmarkThroughput_DiscoverySerial is the single-connection lockstep
// baseline: one outstanding request at a time, exactly what the serial
// request/response transport sustained per connection.
func BenchmarkThroughput_DiscoverySerial(b *testing.B) {
	f := getThroughputFixture(b)
	client, err := transport.Dial(f.addr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	rec := &latRecorder{}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		q := f.queries[i%len(f.queries)]
		qStart := time.Now()
		if _, err := f.sf.Discover(client, q, 10, 0); err != nil {
			b.Fatal(err)
		}
		rec.observe(time.Since(qStart))
	}
	rec.report(b, time.Since(start))
	reportLSHConfig(b, f.cfg)
}

// BenchmarkThroughput_Discovery is the pipelined operating point: many
// concurrent clients multiplexed over ONE shared TCP connection, each
// running full discoveries. GOMAXPROCS (the -cpu flag) scales the
// goroutine count via RunParallel's GOMAXPROCS * SetParallelism workers.
func BenchmarkThroughput_Discovery(b *testing.B) {
	f := getThroughputFixture(b)
	client, err := transport.Dial(f.addr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	rec := &latRecorder{}
	var qctr atomic.Uint64
	b.SetParallelism(8)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := f.queries[(qctr.Add(1)-1)%uint64(len(f.queries))]
			qStart := time.Now()
			if _, err := f.sf.Discover(client, q, 10, 0); err != nil {
				b.Error(err)
				return
			}
			rec.observe(time.Since(qStart))
		}
	})
	rec.report(b, time.Since(start))
	reportLSHConfig(b, f.cfg)
}

// servingBench runs many concurrent LOCKSTEP clients (one outstanding
// discovery each, no client-side batching) against the full serving
// stack: admission gate → optional result cache → coalescer folding the
// concurrent singles into SecRecBatch flushes → pooled connections to
// the shard. This is the multi-core serving path the lockstep baseline
// (BenchmarkThroughput_DiscoverySerial) is compared against.
func servingBench(b *testing.B, f *throughputFixture, cacheEntries int) {
	remote := shard.NewRemote(f.addr)
	// PISD_BENCH_CONNS sizes the connection pool (default 4) so the
	// EXPERIMENTS.md cores × conns-per-shard matrix can sweep it.
	conns := 4
	if v := os.Getenv("PISD_BENCH_CONNS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			b.Fatalf("PISD_BENCH_CONNS=%q: want a positive integer", v)
		}
		conns = n
	}
	remote.SetConns(conns)
	defer remote.Close()
	pool, err := shard.NewPool(shard.DefaultConfig(), remote)
	if err != nil {
		b.Fatal(err)
	}
	serving, err := f.sf.NewServing(pool, frontend.ServingConfig{
		MaxBatch:     16,
		Window:       200 * time.Microsecond,
		MaxInflight:  0, // open gate: the bench must never shed its own load
		CacheEntries: cacheEntries,
	})
	if err != nil {
		b.Fatal(err)
	}
	rec := &latRecorder{}
	var qctr atomic.Uint64
	b.SetParallelism(8)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := f.queries[(qctr.Add(1)-1)%uint64(len(f.queries))]
			qStart := time.Now()
			if _, _, err := serving.Discover(context.Background(), q, 10, 0); err != nil {
				b.Error(err)
				return
			}
			rec.observe(time.Since(qStart))
		}
	})
	rec.report(b, time.Since(start))
	reportLSHConfig(b, f.cfg)
}

// BenchmarkThroughput_DiscoverLockstepCoalesced measures the coalescer +
// connection pool alone: the cache is disabled, so every discovery still
// pays a cloud round trip, but concurrent lockstep callers share
// SecRecBatch flushes over the pooled connections.
func BenchmarkThroughput_DiscoverLockstepCoalesced(b *testing.B) {
	servingBench(b, getThroughputFixture(b), 0)
}

// BenchmarkThroughput_DiscoverLockstepCached adds the leakage-free
// result cache: the 64-query working set is cached after the first pass,
// so steady state serves repeated search patterns without touching the
// cloud at all — the paper's admitted search-pattern leakage turned into
// throughput.
func BenchmarkThroughput_DiscoverLockstepCached(b *testing.B) {
	servingBench(b, getThroughputFixture(b), 4096)
}

// BenchmarkThroughput_DiscoverLockstepTuned is the coalesced (cache-off)
// path under the autotuner's operating point instead of the PR7 defaults:
// same workload, same serving stack, tuned (l, atoms, W, d). The qps
// delta against DiscoverLockstepCoalesced is the serving-side payoff of
// the l·(d+1) budget cut.
func BenchmarkThroughput_DiscoverLockstepTuned(b *testing.B) {
	servingBench(b, getTunedThroughputFixture(b), 0)
}

// BenchmarkThroughput_DiscoverBatch amortizes the round trip over batches
// of 32 queries: one SecRecBatch exchange per batch, per-query results
// identical to serial Discover. Reported metrics are per QUERY (b.N counts
// queries), so qps/p50/p99 compare directly with the other two points;
// batch-boundary queries carry the whole exchange's latency.
func BenchmarkThroughput_DiscoverBatch(b *testing.B) {
	const batchSize = 32
	f := getThroughputFixture(b)
	client, err := transport.Dial(f.addr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	rec := &latRecorder{}
	b.ResetTimer()
	start := time.Now()
	for done := 0; done < b.N; done += batchSize {
		size := batchSize
		if left := b.N - done; left < size {
			size = left
		}
		targets := make([][]float64, size)
		for i := range targets {
			targets[i] = f.queries[(done+i)%len(f.queries)]
		}
		bStart := time.Now()
		if _, err := f.sf.DiscoverBatch(client, targets, 10, nil); err != nil {
			b.Fatal(err)
		}
		per := time.Since(bStart) / time.Duration(size)
		for i := 0; i < size; i++ {
			rec.observe(per)
		}
	}
	rec.report(b, time.Since(start))
	reportLSHConfig(b, f.cfg)
}
