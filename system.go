package pisd

import (
	"fmt"

	"pisd/internal/frontend"
	"pisd/internal/groups"
)

// SystemConfig parameterizes an in-process System.
type SystemConfig struct {
	// Frontend configures keys, LSH and index parameters.
	Frontend FrontendConfig
}

// DefaultSystemConfig returns the paper's default operating point for the
// given profile dimensionality (vocabulary size).
func DefaultSystemConfig(dim int) SystemConfig {
	return SystemConfig{Frontend: frontend.DefaultConfig(dim)}
}

// System wires a Frontend and an in-process Cloud together: the shortest
// path from profiles to private recommendations. Production deployments
// run the two entities as separate processes (see CloudServer/CloudClient
// and examples/distributed); System exists for embedding, tests and
// experiments.
type System struct {
	// SF is the trusted front end; CS the untrusted cloud.
	SF *Frontend
	CS *Cloud
}

// NewSystem creates the pair.
func NewSystem(cfg SystemConfig) (*System, error) {
	sf, err := NewFrontend(cfg.Frontend)
	if err != nil {
		return nil, fmt.Errorf("pisd: %w", err)
	}
	return &System{SF: sf, CS: NewCloud()}, nil
}

// AddProfiles performs service frontend initialization over the uploads:
// it builds the secure index, outsources it together with the encrypted
// profiles to the cloud, and discards the plaintext.
func (s *System) AddProfiles(uploads []Upload) error {
	idx, encProfiles, err := s.SF.BuildIndex(uploads)
	if err != nil {
		return fmt.Errorf("pisd: add profiles: %w", err)
	}
	s.CS.SetIndex(idx)
	s.CS.PutProfiles(encProfiles)
	return nil
}

// Discover returns the top-k recommended users for a target profile via
// the full privacy-preserving flow (trapdoor → SecRec at the cloud →
// decrypt → distance ranking).
func (s *System) Discover(targetProfile []float64, k int) ([]Match, error) {
	return s.SF.Discover(s.CS, targetProfile, k, 0)
}

// DiscoverFor is Discover for an indexed user, excluding the user's own
// identifier from the results.
func (s *System) DiscoverFor(userID uint64, targetProfile []float64, k int) ([]Match, error) {
	return s.SF.Discover(s.CS, targetProfile, k, userID)
}

// DiscoverFoF composes discovery with friend-of-friend boosting over a
// social graph.
func (s *System) DiscoverFoF(graph *SocialGraph, userID uint64, targetProfile []float64, k int) ([]Match, error) {
	return s.SF.DiscoverFoF(s.CS, graph, userID, targetProfile, k)
}

// DiscoverGroups implements the paper's group-discovery application: it
// runs the privacy-preserving top-k discovery for every given member and
// clusters the resulting mutual neighbourhoods into social groups. The
// cloud observes only the ordinary per-user trapdoor queries.
func (s *System) DiscoverGroups(memberProfiles map[uint64][]float64, k int, opts GroupOptions) ([]Group, error) {
	neighbors := make(map[uint64][]GroupNeighbor, len(memberProfiles))
	for id, profile := range memberProfiles {
		matches, err := s.SF.Discover(s.CS, profile, k, id)
		if err != nil {
			return nil, fmt.Errorf("pisd: group discovery for %d: %w", id, err)
		}
		ns := make([]GroupNeighbor, len(matches))
		for i, m := range matches {
			ns[i] = GroupNeighbor{ID: m.ID, Distance: m.Distance}
		}
		neighbors[id] = ns
	}
	return groups.Discover(neighbors, opts)
}
