// Property test for replica-group convergence under random interleavings
// of writes, kills, data-loss restarts, heals, probes and anti-entropy
// repairs. The dynamic scheme re-masks every bucket it touches, so two
// converged replicas hold different bucket BYTES by design; the
// convergence property is therefore stated over what the trusted front
// end can OPEN: after the final heal-probe-repair round, every replica
// must open to byte-identical payloads at every (table, position), hold
// identical encrypted-profile stores, and individually answer direct
// searches for the entire live membership. Failing seeds print the same
// one-line repro the simulation suites use and land in the
// PISD_SIM_FAILURE_FILE artifact.
package pisd_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/lsh"
	"pisd/internal/shard"
	"pisd/internal/transport"
)

// chaosReplica is a ReplicaNode with a kill switch and a data-loss
// restart: while down, every call fails with a connection error; Restart
// swaps the backing store for a brand-new empty cloud (its version
// reports 0, which is what makes the prober re-admit it as lagging
// instead of current).
type chaosReplica struct {
	mu   sync.Mutex
	node shard.ReplicaNode
	down bool
}

func newChaosReplica() *chaosReplica {
	return &chaosReplica{node: shard.NewLocal(cloud.New())}
}

func (c *chaosReplica) setDown(v bool) {
	c.mu.Lock()
	c.down = v
	c.mu.Unlock()
}

// restart models a crash with disk loss: the replica goes down and its
// next incarnation starts from an empty store.
func (c *chaosReplica) restart() {
	c.mu.Lock()
	c.down = true
	c.node = shard.NewLocal(cloud.New())
	c.mu.Unlock()
}

func (c *chaosReplica) get() (shard.ReplicaNode, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return nil, &transport.ConnError{Op: "call", Err: errors.New("replica down")}
	}
	return c.node, nil
}

func (c *chaosReplica) Ping(ctx context.Context) error {
	n, err := c.get()
	if err != nil {
		return err
	}
	return n.Ping(ctx)
}

func (c *chaosReplica) SecRec(ctx context.Context, tr *core.Trapdoor) ([]uint64, [][]byte, error) {
	n, err := c.get()
	if err != nil {
		return nil, nil, err
	}
	return n.SecRec(ctx, tr)
}

func (c *chaosReplica) SecRecBatch(ctx context.Context, ts []*core.Trapdoor) ([][]uint64, [][][]byte, error) {
	n, err := c.get()
	if err != nil {
		return nil, nil, err
	}
	return n.SecRecBatch(ctx, ts)
}

func (c *chaosReplica) FetchProfiles(ids []uint64) ([][]byte, error) {
	n, err := c.get()
	if err != nil {
		return nil, err
	}
	return n.FetchProfiles(ids)
}

func (c *chaosReplica) PutProfiles(profiles map[uint64][]byte) error {
	n, err := c.get()
	if err != nil {
		return err
	}
	return n.PutProfiles(profiles)
}

func (c *chaosReplica) DeleteProfile(id uint64) error {
	n, err := c.get()
	if err != nil {
		return err
	}
	return n.DeleteProfile(id)
}

func (c *chaosReplica) InstallIndex(idx *core.Index) error {
	n, err := c.get()
	if err != nil {
		return err
	}
	return n.InstallIndex(idx)
}

func (c *chaosReplica) InstallDynIndex(idx *core.DynIndex) error {
	n, err := c.get()
	if err != nil {
		return err
	}
	return n.InstallDynIndex(idx)
}

func (c *chaosReplica) FetchBuckets(refs []core.BucketRef) ([]core.DynBucket, error) {
	n, err := c.get()
	if err != nil {
		return nil, err
	}
	return n.FetchBuckets(refs)
}

func (c *chaosReplica) StoreBuckets(refs []core.BucketRef, buckets []core.DynBucket) error {
	n, err := c.get()
	if err != nil {
		return err
	}
	return n.StoreBuckets(refs, buckets)
}

func (c *chaosReplica) Version(ctx context.Context) (uint64, error) {
	n, err := c.get()
	if err != nil {
		return 0, err
	}
	return n.Version(ctx)
}

func (c *chaosReplica) ApplyVersion(v uint64) error {
	n, err := c.get()
	if err != nil {
		return err
	}
	return n.ApplyVersion(v)
}

func (c *chaosReplica) StoreBucketsVersioned(refs []core.BucketRef, buckets []core.DynBucket, v uint64) error {
	n, err := c.get()
	if err != nil {
		return err
	}
	return n.StoreBucketsVersioned(refs, buckets, v)
}

func (c *chaosReplica) ProfileIDs() ([]uint64, error) {
	n, err := c.get()
	if err != nil {
		return nil, err
	}
	return n.ProfileIDs()
}

var _ shard.ReplicaNode = (*chaosReplica)(nil)

// convWorld is one seeded single-partition replica group under the
// property schedule, with exact membership bookkeeping on the side.
type convWorld struct {
	t        *testing.T
	seed     int64
	f        *frontend.Frontend
	ds       *dataset.Dataset
	shards   []frontend.DynShard
	group    *shard.ReplicaGroup
	nodes    []frontend.DynNode
	reps     []*chaosReplica
	prober   *shard.Prober
	repairer *shard.Repairer

	// fresh marks replicas that lost their data in a restart and have not
	// been re-synced by a successful repair yet.
	fresh []bool

	profiles map[uint64][]float64
	live     map[uint64]bool
	deleted  map[uint64]bool
	nextID   uint64
}

func newConvWorld(t *testing.T, seed int64, replicas int) *convWorld {
	t.Helper()
	const users = 40
	f, err := frontend.New(frontend.Config{
		LSH:        lsh.Params{Dim: 48, Tables: 5, Atoms: 2, Width: 0.8, Seed: seed + 9},
		LoadFactor: 0.5,
		ProbeRange: 4,
		MaxLoop:    300,
		MaxRehash:  3,
		Seed:       seed + 9,
		KeySeed:    fmt.Sprintf("conv-%d", seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Config{
		Users: users + 160, Dim: 48, Topics: 8, TopicsPerUser: 2,
		ActiveWords: 12, Noise: 0.02, Seed: seed + 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]frontend.Upload, users)
	for i := 0; i < users; i++ {
		uploads[i] = frontend.Upload{ID: uint64(i + 1), Profile: ds.Profiles[i], Meta: f.ComputeMeta(ds.Profiles[i])}
	}
	built, err := f.BuildShardedDynamicIndex(uploads, 1, nil)
	if err != nil {
		t.Fatalf("BuildShardedDynamicIndex: %v", err)
	}

	w := &convWorld{
		t: t, seed: seed, f: f, ds: ds, shards: built,
		fresh:    make([]bool, replicas),
		profiles: make(map[uint64][]float64),
		live:     make(map[uint64]bool),
		deleted:  make(map[uint64]bool),
		nextID:   uint64(users + 1),
	}
	members := make([]shard.ReplicaNode, replicas)
	for r := 0; r < replicas; r++ {
		w.reps = append(w.reps, newChaosReplica())
		members[r] = w.reps[r]
	}
	g, err := shard.NewReplicaGroup(0, shard.GroupConfig{}, members...)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.InstallDynIndex(built[0].Index); err != nil {
		t.Fatal(err)
	}
	if err := g.PutProfiles(built[0].EncProfiles); err != nil {
		t.Fatal(err)
	}
	w.group = g
	w.nodes = []frontend.DynNode{g}
	w.prober = shard.NewProber(shard.ProberConfig{DemoteAfter: 2, ReadmitAfter: 1}, g)
	repair, err := frontend.NewReplicaRepair(built, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.repairer = shard.NewRepairer(shard.RepairerConfig{},
		func(s int, src, dst shard.ReplicaNode) error { return repair(s, src, dst) }, g)
	for i := 0; i < users; i++ {
		id := uint64(i + 1)
		w.profiles[id] = ds.Profiles[i]
		w.live[id] = true
	}
	return w
}

func (w *convWorld) probe(rounds int) {
	for i := 0; i < rounds; i++ {
		w.prober.ProbeOnce(context.Background())
	}
}

// repairAndMark runs one anti-entropy round and clears the data-loss mark
// on every replica the group now reports current.
func (w *convWorld) repairAndMark() {
	w.repairer.RepairOnce(context.Background())
	for i, st := range w.group.Status() {
		if st.Current {
			w.fresh[i] = false
		}
	}
}

// safeSibling reports whether some replica other than victim can serve
// reads with full data right now: up, current in the group's view, and
// not a data-loss restart awaiting repair. The schedule only downs a
// replica while such a sibling exists, which is exactly the regime the
// replication contract covers (durability is forfeit once every intact
// copy is gone simultaneously).
func (w *convWorld) safeSibling(victim int) bool {
	st := w.group.Status()
	for i, rep := range w.reps {
		rep.mu.Lock()
		up := !rep.down
		rep.mu.Unlock()
		if i != victim && up && st[i].Current && !w.fresh[i] {
			return true
		}
	}
	return false
}

func (w *convWorld) insert() {
	w.t.Helper()
	id := w.nextID
	w.nextID++
	profile := w.ds.Profiles[int(id)%len(w.ds.Profiles)]
	owner := func(uint64) int { return 0 }
	if err := w.f.DynInsertSharded(w.shards, w.nodes, owner, id, profile); err != nil {
		w.t.Fatalf("insert %d: %v", id, err)
	}
	w.profiles[id] = profile
	w.live[id] = true
}

func (w *convWorld) delete(rng *rand.Rand) {
	w.t.Helper()
	if len(w.live) == 0 {
		return
	}
	ids := make([]uint64, 0, len(w.live))
	for id := range w.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	id := ids[rng.Intn(len(ids))]
	owner := func(uint64) int { return 0 }
	if err := w.f.DynDeleteSharded(w.shards, w.nodes, owner, id, w.profiles[id]); err != nil {
		w.t.Fatalf("delete %d: %v", id, err)
	}
	delete(w.live, id)
	w.deleted[id] = true
}

// TestReplicaConvergenceProperty drives ~45 random operations per seed —
// writes, kills, restarts, heals, probes, repairs — then forces a final
// heal-probe-repair round and asserts full convergence across replicas.
func TestReplicaConvergenceProperty(t *testing.T) {
	for _, seed := range repSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Cleanup(func() {
				if t.Failed() {
					recordFailingSeedFor(t, seed, "TestReplicaConvergenceProperty")
				}
			})
			rng := rand.New(rand.NewSource(seed * 131))
			replicas := 2 + rng.Intn(2)
			w := newConvWorld(t, seed, replicas)

			const ops = 45
			for op := 0; op < ops; op++ {
				switch r := rng.Intn(12); {
				case r < 4:
					w.insert()
				case r < 6:
					w.delete(rng)
				case r < 8: // kill or restart a random replica
					victim := rng.Intn(replicas)
					if !w.safeSibling(victim) {
						continue
					}
					if rng.Intn(2) == 0 {
						w.reps[victim].setDown(true)
					} else {
						w.reps[victim].restart()
						w.fresh[victim] = true
						// A restarted replica must be demoted before it
						// serves reads again: its next incarnation holds
						// nothing. Two probe rounds do it (DemoteAfter 2).
						w.probe(2)
					}
				case r < 10: // heal a random down replica
					victim := rng.Intn(replicas)
					w.reps[victim].setDown(false)
					w.probe(1)
				case r < 11:
					w.probe(1)
				default:
					w.repairAndMark()
				}
			}

			// Final round: heal everything, re-admit, repair, converge.
			for _, rep := range w.reps {
				rep.setDown(false)
			}
			w.probe(2)
			w.repairAndMark()
			for i, st := range w.group.Status() {
				if st.Down || !st.Current {
					t.Fatalf("replica %d not current after final repair: %+v", i, st)
				}
			}

			// The convergence property: identical OPENED payloads at every
			// (table, position). Raw bucket bytes differ by design — every
			// repair re-masks — so equality is asserted on what the keys
			// recover, via a forked client so the foreground client's
			// randomness stream is untouched.
			conv, err := w.shards[0].Client.Fork()
			if err != nil {
				t.Fatal(err)
			}
			width := uint64(w.shards[0].Index.Width())
			ref, err := conv.OpenedRange(w.reps[0], 0, width)
			if err != nil {
				t.Fatalf("open replica 0: %v", err)
			}
			if len(ref) == 0 {
				t.Fatal("replica 0 opened to zero buckets")
			}
			for i := 1; i < replicas; i++ {
				got, err := conv.OpenedRange(w.reps[i], 0, width)
				if err != nil {
					t.Fatalf("open replica %d: %v", i, err)
				}
				if len(got) != len(ref) {
					t.Fatalf("replica %d opened %d buckets, replica 0 opened %d", i, len(got), len(ref))
				}
				for j := range ref {
					if !bytes.Equal(ref[j], got[j]) {
						t.Fatalf("replica %d diverges from replica 0 at bucket %d after convergence", i, j)
					}
				}
			}

			// Profile stores must match id-for-id and byte-for-byte.
			refIDs, err := w.reps[0].ProfileIDs()
			if err != nil {
				t.Fatal(err)
			}
			refProfiles, err := w.reps[0].FetchProfiles(refIDs)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < replicas; i++ {
				ids, err := w.reps[i].ProfileIDs()
				if err != nil {
					t.Fatal(err)
				}
				if len(ids) != len(refIDs) {
					t.Fatalf("replica %d holds %d profiles, replica 0 holds %d", i, len(ids), len(refIDs))
				}
				for j := range refIDs {
					if ids[j] != refIDs[j] {
						t.Fatalf("replica %d profile id[%d] = %d, want %d", i, j, ids[j], refIDs[j])
					}
				}
				profs, err := w.reps[i].FetchProfiles(ids)
				if err != nil {
					t.Fatal(err)
				}
				for j := range refProfiles {
					if !bytes.Equal(profs[j], refProfiles[j]) {
						t.Fatalf("replica %d profile %d bytes diverge", i, refIDs[j])
					}
				}
			}

			// And semantically: every replica individually serves the full
			// live membership, with no deleted or unknown ids.
			liveIDs := make([]uint64, 0, len(w.live))
			for id := range w.live {
				liveIDs = append(liveIDs, id)
			}
			sort.Slice(liveIDs, func(a, b int) bool { return liveIDs[a] < liveIDs[b] })
			for i := 0; i < replicas; i++ {
				for _, id := range liveIDs {
					got, err := conv.Search(w.reps[i], w.f.ComputeMeta(w.profiles[id]))
					if err != nil {
						t.Fatalf("replica %d: search for %d: %v", i, id, err)
					}
					found := false
					for _, g := range got {
						if g == id {
							found = true
						}
						if _, known := w.profiles[g]; !known {
							t.Fatalf("replica %d: ghost id %d", i, g)
						}
						if w.deleted[g] {
							t.Fatalf("replica %d: deleted id %d resurfaced", i, g)
						}
					}
					if !found {
						t.Fatalf("replica %d: live user %d unreachable after convergence", i, id)
					}
				}
			}
		})
	}
}
