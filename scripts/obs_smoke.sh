#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke of the observability endpoint.
#
# Builds the server and frontend binaries, brings up a 2-shard deployment
# with -obs enabled on both processes, runs a couple of discoveries, and
# asserts that each /metrics endpoint serves the keys the deployment
# dashboards rely on, with sane values:
#
#   server   cloud.buckets_unmasked        > 0 (SecRec answered queries)
#   server   cloud.leakage_invariant_violations == 0
#   frontend transport.frames_out          > 0 (multiplexed frames sent)
#   frontend shard.0.secrec_p99_ns         > 0 (per-shard latency derived)
#
# The frontend lingers after the discoveries when -obs is set, which is
# what makes scraping it here possible.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVER_OBS=127.0.0.1:9310
FRONTEND_OBS=127.0.0.1:9311
CLOUD=127.0.0.1:7310

BIN="$(mktemp -d)"
server_pid=""
frontend_pid=""
cleanup() {
    [ -n "$frontend_pid" ] && kill "$frontend_pid" 2>/dev/null || true
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/pisd-server" ./cmd/pisd-server
go build -o "$BIN/pisd-frontend" ./cmd/pisd-frontend

"$BIN/pisd-server" -addr "$CLOUD" -shards 2 -obs "$SERVER_OBS" &
server_pid=$!

# Wait for the server's obs endpoint before starting the frontend.
for i in $(seq 1 50); do
    curl -sf "http://$SERVER_OBS/metrics" >/dev/null 2>&1 && break
    sleep 0.2
done

"$BIN/pisd-frontend" -cloud "$CLOUD,127.0.0.1:7311" -users 400 -dim 100 \
    -discover 1,2 -obs "$FRONTEND_OBS" &
frontend_pid=$!

# metric ENDPOINT KEY prints the key's value, failing if absent.
metric() {
    curl -sf "http://$1/metrics" | tr -d ' ' | tr ',{}' '\n\n\n' \
        | awk -F: -v k="\"$2\"" '$1 == k { print $2; found = 1 } END { exit !found }'
}

# Poll until the discoveries have gone through (buckets were unmasked).
unmasked=0
for i in $(seq 1 100); do
    unmasked="$(metric "$SERVER_OBS" cloud.buckets_unmasked 2>/dev/null || echo 0)"
    [ "$unmasked" -gt 0 ] && break
    sleep 0.3
done

fail=0
check() { # check NAME VALUE TEST...
    local name=$1 value=$2
    shift 2
    if [ -z "$value" ] || ! [ "$value" "$@" ]; then
        echo "FAIL  $name = '$value' (want $*)" >&2
        fail=1
    else
        echo "ok    $name = $value"
    fi
}

check cloud.buckets_unmasked "$unmasked" -gt 0
check cloud.leakage_invariant_violations \
    "$(metric "$SERVER_OBS" cloud.leakage_invariant_violations || true)" -eq 0
check transport.frames_out \
    "$(metric "$FRONTEND_OBS" transport.frames_out || true)" -gt 0
check shard.0.secrec_p99_ns \
    "$(metric "$FRONTEND_OBS" shard.0.secrec_p99_ns || true)" -gt 0

# pprof must answer too: the index page is enough to prove it is wired up.
if ! curl -sf "http://$SERVER_OBS/debug/pprof/" >/dev/null; then
    echo "FAIL  /debug/pprof/ not served" >&2
    fail=1
else
    echo "ok    /debug/pprof/ served"
fi

if [ "$fail" -ne 0 ]; then
    echo "observability smoke failed" >&2
    exit 1
fi
echo "observability smoke passed"
