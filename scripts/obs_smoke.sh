#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke of the observability endpoint.
#
# Builds the server and frontend binaries, brings up a 2-shard deployment
# with -obs enabled on both processes, runs a couple of discoveries, and
# asserts that each /metrics endpoint serves the keys the deployment
# dashboards rely on, with sane values:
#
#   server   cloud.buckets_unmasked        > 0 (SecRec answered queries)
#   server   cloud.leakage_invariant_violations == 0
#   server   transport.server.workers_per_conn == 6 (-workers honored)
#   frontend transport.frames_out          > 0 (multiplexed frames sent)
#   frontend shard.0.secrec_p99_ns         > 0 (per-shard latency derived)
#   frontend frontend.cache_misses         > 0 (first discoveries missed)
#   frontend frontend.cache_hits           > 0 (repeated target 1 hit)
#   frontend frontend.coalesce_batch_p50_ns > 0 (flushes recorded sizes)
#   frontend frontend.admission_rejected   == 0 (no shedding at this load)
#
# The discovery list repeats target 1 so the serving path's result cache
# provably takes a hit, and the server runs with an explicit -workers
# bound so the gauge reflects CLI configuration rather than a default.
#
# A second phase smokes the segmented deployment: pisd-segbuild streams a
# small population to disk (its metrics snapshot must show the compaction
# ran), a fresh server serves the segments, and after an attached
# discovery its /metrics must expose the segment store's surface:
#
#   segbuild segstore.compactions          > 0 (merge pass ran)
#   server   segstore.segments             > 0 (live segments gauge)
#   server   segstore.bytes                > 0 (on-disk index size)
#   server   segstore.load_p50_ns          > 0 (bucket-load latency served)
#   server   segstore.load_p99_ns          > 0
#
# The frontend lingers after the discoveries when -obs is set, which is
# what makes scraping it here possible.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVER_OBS=127.0.0.1:9310
FRONTEND_OBS=127.0.0.1:9311
CLOUD=127.0.0.1:7310

SEG_SERVER_OBS=127.0.0.1:9312
SEG_CLOUD=127.0.0.1:7312

BIN="$(mktemp -d)"
server_pid=""
frontend_pid=""
seg_server_pid=""
cleanup() {
    [ -n "$frontend_pid" ] && kill "$frontend_pid" 2>/dev/null || true
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    [ -n "$seg_server_pid" ] && kill "$seg_server_pid" 2>/dev/null || true
    # Let the servers finish their shutdown state save before the
    # directory under them disappears.
    wait 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/pisd-server" ./cmd/pisd-server
go build -o "$BIN/pisd-frontend" ./cmd/pisd-frontend
go build -o "$BIN/pisd-segbuild" ./cmd/pisd-segbuild

"$BIN/pisd-server" -addr "$CLOUD" -shards 2 -workers 6 -obs "$SERVER_OBS" &
server_pid=$!

# Wait for the server's obs endpoint before starting the frontend.
for i in $(seq 1 50); do
    curl -sf "http://$SERVER_OBS/metrics" >/dev/null 2>&1 && break
    sleep 0.2
done

"$BIN/pisd-frontend" -cloud "$CLOUD,127.0.0.1:7311" -users 400 -dim 100 \
    -discover 1,2,1 -obs "$FRONTEND_OBS" &
frontend_pid=$!

# metric ENDPOINT KEY prints the key's value, failing if absent.
metric() {
    curl -sf "http://$1/metrics" | tr -d ' ' | tr ',{}' '\n\n\n' \
        | awk -F: -v k="\"$2\"" '$1 == k { print $2; found = 1 } END { exit !found }'
}

# Poll until the discoveries have gone through (buckets were unmasked).
unmasked=0
for i in $(seq 1 100); do
    unmasked="$(metric "$SERVER_OBS" cloud.buckets_unmasked 2>/dev/null || echo 0)"
    [ "$unmasked" -gt 0 ] && break
    sleep 0.3
done

fail=0
check() { # check NAME VALUE TEST...
    local name=$1 value=$2
    shift 2
    if [ -z "$value" ] || ! [ "$value" "$@" ]; then
        echo "FAIL  $name = '$value' (want $*)" >&2
        fail=1
    else
        echo "ok    $name = $value"
    fi
}

check cloud.buckets_unmasked "$unmasked" -gt 0
check cloud.leakage_invariant_violations \
    "$(metric "$SERVER_OBS" cloud.leakage_invariant_violations || true)" -eq 0
check transport.server.workers_per_conn \
    "$(metric "$SERVER_OBS" transport.server.workers_per_conn || true)" -eq 6
check transport.frames_out \
    "$(metric "$FRONTEND_OBS" transport.frames_out || true)" -gt 0
check shard.0.secrec_p99_ns \
    "$(metric "$FRONTEND_OBS" shard.0.secrec_p99_ns || true)" -gt 0
check frontend.cache_misses \
    "$(metric "$FRONTEND_OBS" frontend.cache_misses || true)" -gt 0
check frontend.cache_hits \
    "$(metric "$FRONTEND_OBS" frontend.cache_hits || true)" -gt 0
check frontend.coalesce_batch_p50_ns \
    "$(metric "$FRONTEND_OBS" frontend.coalesce_batch_p50_ns || true)" -gt 0
check frontend.admission_rejected \
    "$(metric "$FRONTEND_OBS" frontend.admission_rejected || true)" -eq 0

# pprof must answer too: the index page is enough to prove it is wired up.
if ! curl -sf "http://$SERVER_OBS/debug/pprof/" >/dev/null; then
    echo "FAIL  /debug/pprof/ not served" >&2
    fail=1
else
    echo "ok    /debug/pprof/ served"
fi

# ---- segmented deployment phase -------------------------------------
# Stream a small population to disk, serve the segments, attach, and
# check the segstore metric surface end to end.
"$BIN/pisd-segbuild" -users 800 -dim 100 -batch 200 -out "$BIN/segments" \
    -state "$BIN/segstate" -keys "$BIN/sf.keys" -queries 4 \
    -metrics "$BIN/segbuild-metrics.json" >/dev/null

# file_metric FILE KEY prints the key's value from a metrics snapshot.
file_metric() {
    tr -d ' ' <"$1" | tr ',{}' '\n\n\n' \
        | awk -F: -v k="\"$2\"" '$1 == k { print $2; found = 1 } END { exit !found }'
}
check segstore.compactions \
    "$(file_metric "$BIN/segbuild-metrics.json" segstore.compactions || true)" -gt 0

"$BIN/pisd-server" -addr "$SEG_CLOUD" -segments "$BIN/segments" \
    -state "$BIN/segstate" -obs "$SEG_SERVER_OBS" &
seg_server_pid=$!
for i in $(seq 1 50); do
    curl -sf "http://$SEG_SERVER_OBS/metrics" >/dev/null 2>&1 && break
    sleep 0.2
done

"$BIN/pisd-frontend" -attach -cloud "$SEG_CLOUD" -users 800 -dim 100 \
    -keys "$BIN/sf.keys" -discover 1,2 >/dev/null

check segstore.segments \
    "$(metric "$SEG_SERVER_OBS" segstore.segments || true)" -gt 0
check segstore.bytes \
    "$(metric "$SEG_SERVER_OBS" segstore.bytes || true)" -gt 0
check segstore.load_p50_ns \
    "$(metric "$SEG_SERVER_OBS" segstore.load_p50_ns || true)" -gt 0
check segstore.load_p99_ns \
    "$(metric "$SEG_SERVER_OBS" segstore.load_p99_ns || true)" -gt 0

if [ "$fail" -ne 0 ]; then
    echo "observability smoke failed" >&2
    exit 1
fi
echo "observability smoke passed"
