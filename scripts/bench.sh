#!/usr/bin/env bash
# bench.sh — benchmark trajectory tooling.
#
# Runs the paper-figure benchmarks (Fig. 3/4/5), the crypt substrate
# microbenchmarks with -benchmem, and the sustained-throughput benchmarks
# (serial / pipelined / batched discovery, plus the PR7 serving path:
# lockstep clients through the coalescer + connection pool, with and
# without the result cache — all with qps and p50/p99 latency), and
# writes BENCH_PR7.json at the repo root: the pre-PR5 baseline (recorded
# once, constant below) next to the freshly measured numbers. PR7's
# acceptance bar reads straight out of the file:
# BenchmarkThroughput_DiscoverLockstepCached qps >= 4x the baseline
# BenchmarkThroughput_DiscoverySerial qps (438.8).
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=3s scripts/bench.sh    # longer runs for stabler numbers
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR7.json}"
BENCHTIME="${BENCHTIME:-1s}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench 'BenchmarkFig' -benchmem -benchtime "$BENCHTIME" . | tee "$TMP"
go test -run '^$' -bench 'BenchmarkThroughput' -benchtime "$BENCHTIME" . | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkPos$|BenchmarkPos8$|BenchmarkMaskInto$|BenchmarkDRBGFill$|BenchmarkEncProfile1000$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/crypt/ | tee -a "$TMP"

# Pre-PR5 baseline: BENCH_PR3.json's "after" numbers, measured at commit
# 7784bd5 on the reference machine (Intel Xeon @ 2.10GHz, 1 CPU,
# go1.24.0 linux/amd64, BENCHTIME=3s) — the operating point before the
# observability layer was threaded through the discovery path. PR5's
# acceptance bar: Throughput/Fig4a/Fig5c within 3% of these.
BASELINE='{
    "BenchmarkFig3_Discovery": {"ns_per_op": 187228, "bytes_per_op": 11800, "allocs_per_op": 40},
    "BenchmarkFig4a_IndexBuild": {"ns_per_op": 37461950, "bytes_per_op": 5562604, "allocs_per_op": 336},
    "BenchmarkFig4b_TrapdoorSecRec": {"ns_per_op": 200699, "bytes_per_op": 32968, "allocs_per_op": 26},
    "BenchmarkFig4c_Search": {"ns_per_op": 616064, "bytes_per_op": 341128, "allocs_per_op": 1870},
    "BenchmarkFig4c_DeleteInsert": {"ns_per_op": 1996475, "bytes_per_op": 1190635, "allocs_per_op": 7149},
    "BenchmarkFig5a_BuildPhases": {"ns_per_op": 32927586, "bytes_per_op": 5562605, "allocs_per_op": 336},
    "BenchmarkFig5b_AccuracyQuery": {"ns_per_op": 4462010, "bytes_per_op": 37688, "allocs_per_op": 113},
    "BenchmarkFig5c_L100Trapdoor": {"ns_per_op": 256145, "bytes_per_op": 41136, "allocs_per_op": 202},
    "BenchmarkThroughput_DiscoverySerial": {"ns_per_op": 2278962, "qps": 438.8, "p50_us": 2023, "p99_us": 4770},
    "BenchmarkThroughput_Discovery": {"ns_per_op": 2490633, "qps": 401.5, "p50_us": 17598, "p99_us": 37571},
    "BenchmarkThroughput_DiscoverBatch": {"ns_per_op": 2716519, "qps": 368.1, "p50_us": 2718, "p99_us": 2955},
    "BenchmarkPos": {"ns_per_op": 225.6, "bytes_per_op": 0, "allocs_per_op": 0},
    "BenchmarkEncProfile1000": {"ns_per_op": 12040, "bytes_per_op": 16896, "allocs_per_op": 3}
  }'

{
    echo '{'
    echo '  "schema": "pisd-bench-v1",'
    echo '  "benchtime": "'"$BENCHTIME"'",'
    echo '  "cpu": "'"$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"'",'
    echo '  "before": '"$BASELINE"','
    echo '  "after": {'
    awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = ""; bop = ""; aop = ""; qps = ""; p50 = ""; p99 = ""
            for (i = 2; i <= NF; i++) {
                if ($i == "ns/op")     ns  = $(i-1)
                if ($i == "B/op")      bop = $(i-1)
                if ($i == "allocs/op") aop = $(i-1)
                if ($i == "qps")       qps = $(i-1)
                if ($i == "p50_us")    p50 = $(i-1)
                if ($i == "p99_us")    p99 = $(i-1)
            }
            if (ns == "") next
            if (n++) printf ",\n"
            printf "    \"%s\": {\"ns_per_op\": %s", name, ns
            if (bop != "") printf ", \"bytes_per_op\": %s", bop
            if (aop != "") printf ", \"allocs_per_op\": %s", aop
            if (qps != "") printf ", \"qps\": %s", qps
            if (p50 != "") printf ", \"p50_us\": %s", p50
            if (p99 != "") printf ", \"p99_us\": %s", p99
            printf "}"
        }
        END { printf "\n" }
    ' "$TMP"
    echo '  }'
    echo '}'
} > "$OUT"

echo "wrote $OUT"
