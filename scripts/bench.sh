#!/usr/bin/env bash
# bench.sh — benchmark trajectory tooling.
#
# Runs the paper-figure benchmarks (Fig. 3/4/5), the crypt substrate
# microbenchmarks with -benchmem, the sustained-throughput benchmarks
# (serial / pipelined / batched discovery, the PR7 serving path, and the
# PR8 tuned operating point — all with qps and p50/p99 latency), and the
# PR10 subscription-evaluation benchmarks (frontend-side standing-query
# cost per insert at 16/128/1024 subscriptions), and
# writes BENCH_PR10.json at the repo root: the PR7 baseline (recorded
# once, constant below) next to the freshly measured numbers. Every
# benchmark that drives the secure index also stamps its active LSH
# operating point (lsh_l, lsh_atoms, lsh_width, lsh_d) onto its metric
# line, so the json records which configuration produced each number.
# PR8's acceptance bar reads straight out of the file:
# BenchmarkThroughput_DiscoverLockstepTuned qps vs the baseline
# BenchmarkThroughput_DiscoverLockstepCoalesced qps (343.1), alongside
# the ≥25% l·(d+1) budget cut recorded in autotune_frontier*.json.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=3s scripts/bench.sh    # longer runs for stabler numbers
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
BENCHTIME="${BENCHTIME:-1s}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench 'BenchmarkFig' -benchmem -benchtime "$BENCHTIME" . | tee "$TMP"
go test -run '^$' -bench 'BenchmarkThroughput' -benchtime "$BENCHTIME" . | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkSubscriptionEval' -benchmem -benchtime "$BENCHTIME" . | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkPos$|BenchmarkPos8$|BenchmarkMaskInto$|BenchmarkDRBGFill$|BenchmarkEncProfile1000$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/crypt/ | tee -a "$TMP"

# PR7 baseline: BENCH_PR7.json's "after" numbers, measured on the
# reference machine (Intel Xeon @ 2.10GHz, 1 CPU, go1.24 linux/amd64,
# BENCHTIME=3s) — the operating point before the autotuner's tuned
# parameters landed. PR8's acceptance bar: DiscoverLockstepTuned qps
# above DiscoverLockstepCoalesced's 343.1.
BASELINE='{
    "BenchmarkFig3_Discovery": {"ns_per_op": 199088, "bytes_per_op": 11800, "allocs_per_op": 40},
    "BenchmarkFig4a_IndexBuild": {"ns_per_op": 37513512, "bytes_per_op": 5562603, "allocs_per_op": 336},
    "BenchmarkFig4b_TrapdoorSecRec": {"ns_per_op": 217094, "bytes_per_op": 32968, "allocs_per_op": 26},
    "BenchmarkFig4c_Search": {"ns_per_op": 617183, "bytes_per_op": 341135, "allocs_per_op": 1870},
    "BenchmarkFig4c_DeleteInsert": {"ns_per_op": 2209182, "bytes_per_op": 1190537, "allocs_per_op": 7148},
    "BenchmarkFig5a_BuildPhases": {"ns_per_op": 34943035, "bytes_per_op": 5562603, "allocs_per_op": 336},
    "BenchmarkFig5b_AccuracyQuery": {"ns_per_op": 5013151, "bytes_per_op": 37688, "allocs_per_op": 113},
    "BenchmarkFig5c_L100Trapdoor": {"ns_per_op": 294303, "bytes_per_op": 41136, "allocs_per_op": 202},
    "BenchmarkThroughput_DiscoverySerial": {"ns_per_op": 2308180, "qps": 433.3, "p50_us": 2072, "p99_us": 4941},
    "BenchmarkThroughput_Discovery": {"ns_per_op": 2594740, "qps": 385.4, "p50_us": 18391, "p99_us": 39613},
    "BenchmarkThroughput_DiscoverLockstepCoalesced": {"ns_per_op": 2914953, "qps": 343.1, "p50_us": 22236, "p99_us": 52759},
    "BenchmarkThroughput_DiscoverLockstepCached": {"ns_per_op": 197996, "qps": 5054, "p50_us": 174.0, "p99_us": 29557},
    "BenchmarkThroughput_DiscoverBatch": {"ns_per_op": 2543519, "qps": 393.2, "p50_us": 2527, "p99_us": 2749},
    "BenchmarkPos": {"ns_per_op": 236.0, "bytes_per_op": 0, "allocs_per_op": 0},
    "BenchmarkPos8": {"ns_per_op": 202.2, "bytes_per_op": 0, "allocs_per_op": 0},
    "BenchmarkMaskInto": {"ns_per_op": 210.8, "bytes_per_op": 0, "allocs_per_op": 0},
    "BenchmarkDRBGFill": {"ns_per_op": 16.97, "bytes_per_op": 0, "allocs_per_op": 0},
    "BenchmarkEncProfile1000": {"ns_per_op": 11396, "bytes_per_op": 16896, "allocs_per_op": 3}
  }'

{
    echo '{'
    echo '  "schema": "pisd-bench-v2",'
    echo '  "benchtime": "'"$BENCHTIME"'",'
    echo '  "cpu": "'"$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"'",'
    echo '  "before": '"$BASELINE"','
    echo '  "after": {'
    awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = ""; bop = ""; aop = ""; qps = ""; p50 = ""; p99 = ""
            ll = ""; lk = ""; lw = ""; ld = ""; sb = ""
            for (i = 2; i <= NF; i++) {
                if ($i == "ns/op")     ns  = $(i-1)
                if ($i == "B/op")      bop = $(i-1)
                if ($i == "allocs/op") aop = $(i-1)
                if ($i == "qps")       qps = $(i-1)
                if ($i == "p50_us")    p50 = $(i-1)
                if ($i == "p99_us")    p99 = $(i-1)
                if ($i == "lsh_l")     ll  = $(i-1)
                if ($i == "lsh_atoms") lk  = $(i-1)
                if ($i == "lsh_width") lw  = $(i-1)
                if ($i == "lsh_d")     ld  = $(i-1)
                if ($i == "subs")      sb  = $(i-1)
            }
            if (ns == "") next
            if (n++) printf ",\n"
            printf "    \"%s\": {\"ns_per_op\": %s", name, ns
            if (bop != "") printf ", \"bytes_per_op\": %s", bop
            if (aop != "") printf ", \"allocs_per_op\": %s", aop
            if (qps != "") printf ", \"qps\": %s", qps
            if (p50 != "") printf ", \"p50_us\": %s", p50
            if (p99 != "") printf ", \"p99_us\": %s", p99
            if (ll != "") printf ", \"lsh_l\": %s", ll
            if (lk != "") printf ", \"lsh_atoms\": %s", lk
            if (lw != "") printf ", \"lsh_width\": %s", lw
            if (ld != "") printf ", \"lsh_d\": %s", ld
            if (sb != "") printf ", \"subs\": %s", sb
            printf "}"
        }
        END { printf "\n" }
    ' "$TMP"
    echo '  }'
    echo '}'
} > "$OUT"

echo "wrote $OUT"
