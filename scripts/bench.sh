#!/usr/bin/env bash
# bench.sh — benchmark trajectory tooling.
#
# Runs the paper-figure benchmarks (Fig. 3/4/5), the crypt substrate
# microbenchmarks with -benchmem, and the sustained-throughput benchmarks
# (serial / pipelined / batched discovery with qps and p50/p99 latency),
# and writes BENCH_PR3.json at the repo root: the pre-PR3 baseline
# (recorded once, constant below) next to the freshly measured numbers,
# so the speedup claims in EXPERIMENTS.md stay reproducible.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=3s scripts/bench.sh    # longer runs for stabler numbers
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR3.json}"
BENCHTIME="${BENCHTIME:-1s}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench 'BenchmarkFig' -benchmem -benchtime "$BENCHTIME" . | tee "$TMP"
go test -run '^$' -bench 'BenchmarkThroughput' -benchtime "$BENCHTIME" . | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkPos$|BenchmarkPos8$|BenchmarkMaskInto$|BenchmarkDRBGFill$|BenchmarkEncProfile1000$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/crypt/ | tee -a "$TMP"

# Pre-PR3 baseline, measured at commit 1ee2634 on the reference machine
# (Intel Xeon @ 2.10GHz, 1 CPU, go1.24.0 linux/amd64). The throughput
# entry is the serial request/response transport's single-connection
# lockstep discovery loop — the operating point PR3's framed multiplexed
# protocol replaces.
BASELINE='{
    "BenchmarkFig4a_IndexBuild":   {"ns_per_op": 124957860, "bytes_per_op": 76619012, "allocs_per_op": 1270246},
    "BenchmarkFig4b_TrapdoorSecRec": {"ns_per_op": 640108, "bytes_per_op": 397208, "allocs_per_op": 7136},
    "BenchmarkFig4c_Search":       {"ns_per_op": 2006186, "bytes_per_op": 1555342, "allocs_per_op": 18832},
    "BenchmarkFig4c_DeleteInsert": {"ns_per_op": 7803890, "bytes_per_op": 5675300, "allocs_per_op": 67577},
    "BenchmarkFig5c_L100Trapdoor": {"ns_per_op": 1161078, "bytes_per_op": 746736, "allocs_per_op": 13802},
    "BenchmarkThroughput_DiscoverySerial": {"ns_per_op": 3282774, "qps": 304.6, "p50_us": 2825, "p99_us": 6615},
    "BenchmarkPos":                {"ns_per_op": 675.0, "bytes_per_op": 560, "allocs_per_op": 9},
    "BenchmarkEncProfile1000":     {"ns_per_op": 12248, "bytes_per_op": 18424, "allocs_per_op": 17}
  }'

{
    echo '{'
    echo '  "schema": "pisd-bench-v1",'
    echo '  "benchtime": "'"$BENCHTIME"'",'
    echo '  "cpu": "'"$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"'",'
    echo '  "before": '"$BASELINE"','
    echo '  "after": {'
    awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = ""; bop = ""; aop = ""; qps = ""; p50 = ""; p99 = ""
            for (i = 2; i <= NF; i++) {
                if ($i == "ns/op")     ns  = $(i-1)
                if ($i == "B/op")      bop = $(i-1)
                if ($i == "allocs/op") aop = $(i-1)
                if ($i == "qps")       qps = $(i-1)
                if ($i == "p50_us")    p50 = $(i-1)
                if ($i == "p99_us")    p99 = $(i-1)
            }
            if (ns == "") next
            if (n++) printf ",\n"
            printf "    \"%s\": {\"ns_per_op\": %s", name, ns
            if (bop != "") printf ", \"bytes_per_op\": %s", bop
            if (aop != "") printf ", \"allocs_per_op\": %s", aop
            if (qps != "") printf ", \"qps\": %s", qps
            if (p50 != "") printf ", \"p50_us\": %s", p50
            if (p99 != "") printf ", \"p99_us\": %s", p99
            printf "}"
        }
        END { printf "\n" }
    ' "$TMP"
    echo '  }'
    echo '}'
} > "$OUT"

echo "wrote $OUT"
