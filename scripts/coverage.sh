#!/usr/bin/env bash
# coverage.sh — per-package coverage floor.
#
# Runs the short test suite with coverage over the whole module, writes
# the raw report to coverage.txt (CI uploads it as an artifact), and
# compares every package against the recorded floor in
# scripts/coverage_baseline.txt. A package that drops more than
# $SLACK_PT percentage points below its recorded value fails the run; a
# package listed in the baseline but missing from the report fails too
# (deleting a package means editing the baseline, on purpose, in the same
# change). New packages and improvements pass — re-record with:
#
#   scripts/coverage.sh --record
#
# Usage: scripts/coverage.sh [--record] [report.txt]
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/coverage_baseline.txt
SLACK_PT="${SLACK_PT:-2.0}"

RECORD=0
if [ "${1:-}" = "--record" ]; then
    RECORD=1
    shift
fi
OUT="${1:-coverage.txt}"

go test -short -cover ./... | tee "$OUT"

# Extract "package percent" pairs from the report; packages without test
# files (cmd/, examples/) report 0.0% without an "ok" line and are skipped.
report_pairs() {
    awk '$1 == "ok" {
        for (i = 1; i <= NF; i++) {
            if ($i == "coverage:") {
                pct = $(i+1); sub(/%$/, "", pct)
                print $2, pct
            }
        }
    }' "$OUT"
}

if [ "$RECORD" -eq 1 ]; then
    {
        echo "# Per-package coverage floor, recorded by scripts/coverage.sh --record."
        echo "# CI fails when a package drops more than ${SLACK_PT} points below its line."
        report_pairs | sort
    } > "$BASELINE"
    echo "recorded $BASELINE"
    exit 0
fi

report_pairs | sort | awk -v slack="$SLACK_PT" -v base="$BASELINE" '
    BEGIN {
        while ((getline line < base) > 0) {
            if (line ~ /^#/ || line == "") continue
            split(line, f, " ")
            want[f[1]] = f[2]
        }
        close(base)
    }
    {
        got[$1] = $2
        if (!($1 in want)) {
            printf "NEW   %-40s %6.1f%% (not in baseline; record it)\n", $1, $2
            next
        }
        delta = $2 - want[$1]
        if (delta < -slack) {
            printf "FAIL  %-40s %6.1f%% (baseline %.1f%%, dropped %.1f pts)\n", $1, $2, want[$1], -delta
            failed = 1
        } else if (delta > slack) {
            printf "UP    %-40s %6.1f%% (baseline %.1f%%; consider re-recording)\n", $1, $2, want[$1]
        } else {
            printf "ok    %-40s %6.1f%% (baseline %.1f%%)\n", $1, $2, want[$1]
        }
    }
    END {
        for (p in want) {
            if (!(p in got)) {
                printf "FAIL  %-40s missing from report (baseline %.1f%%)\n", p, want[p]
                failed = 1
            }
        }
        if (failed) {
            print "coverage floor violated" > "/dev/stderr"
            exit 1
        }
    }
'
echo "coverage floor holds (slack ${SLACK_PT} pts)"
