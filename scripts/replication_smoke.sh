#!/usr/bin/env bash
# replication_smoke.sh — end-to-end smoke of the replicated shard fleet.
#
# Brings up a real 2-partition × 2-replica deployment (four pisd-server
# processes, one per replica, so a replica can be killed independently),
# drives sustained discovery load through a replicated frontend
# (-replicas 2, many waves, result cache off so every wave reaches the
# cloud), and kill -9's replica 0 of BOTH groups mid-load. The gates are
# the replication contract:
#
#   - the frontend finishes every wave without a single failed discovery
#     (it prints the final "total traffic:" line and stays alive),
#   - no discovery is degraded to PARTIAL — the surviving replica of each
#     group absorbs the load completely,
#   - the frontend's /metrics prove the failover path actually ran:
#     replica.failovers > 0 and replica.demotions > 0,
#   - the leakage-invariant suite — including the replicated
#     failover/repair test — passes under the race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

FRONTEND_OBS=127.0.0.1:9320
BASE_PORT=7320
HOST=127.0.0.1

BIN="$(mktemp -d)"
LOG="$BIN/frontend.log"
declare -a server_pids=()
frontend_pid=""
cleanup() {
    [ -n "$frontend_pid" ] && kill "$frontend_pid" 2>/dev/null || true
    for pid in "${server_pids[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/pisd-server" ./cmd/pisd-server
go build -o "$BIN/pisd-frontend" ./cmd/pisd-frontend

# One process per replica: addrs[s*R+r] = BASE_PORT + s*R + r, matching
# the frontend's consecutive-run replica grouping. Four processes means
# `kill -9` takes out exactly one replica of one group.
ADDRS=""
for i in 0 1 2 3; do
    port=$((BASE_PORT + i))
    "$BIN/pisd-server" -addr "$HOST:$port" &
    server_pids+=($!)
    ADDRS="$ADDRS,$HOST:$port"
done
ADDRS="${ADDRS#,}"

# Wait for every replica to accept connections.
for i in 0 1 2 3; do
    port=$((BASE_PORT + i))
    up=0
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/$HOST/$port") 2>/dev/null; then
            exec 3>&- 3<&-
            up=1
            break
        fi
        sleep 0.2
    done
    if [ "$up" -ne 1 ]; then
        echo "FAIL  replica on port $port never came up" >&2
        exit 1
    fi
done

# Sustained load: many waves, cache off (every wave must reach the cloud),
# a fast probe so demotion happens inside the run.
"$BIN/pisd-frontend" -cloud "$ADDRS" -replicas 2 -users 300 -dim 100 \
    -discover 1,2,3,4,5,6 -waves 400 -cache 0 -probe-interval 200ms \
    -obs "$FRONTEND_OBS" >"$LOG" 2>&1 &
frontend_pid=$!

# Wait until the load is demonstrably underway (index installed, waves
# running), then murder replica 0 of each group mid-load.
started=0
for _ in $(seq 1 600); do
    if ! kill -0 "$frontend_pid" 2>/dev/null; then
        echo "FAIL  frontend died during warmup:" >&2
        tail -20 "$LOG" >&2
        exit 1
    fi
    if grep -q -- '--- wave 3/' "$LOG"; then
        started=1
        break
    fi
    sleep 0.05
done
if [ "$started" -ne 1 ]; then
    echo "FAIL  load never reached wave 3" >&2
    tail -20 "$LOG" >&2
    exit 1
fi

echo "killing replica 0 of both groups mid-load (pids ${server_pids[0]}, ${server_pids[2]})"
kill -9 "${server_pids[0]}" "${server_pids[2]}"

# The frontend must now finish every remaining wave on the surviving
# replicas: the final traffic summary only prints when no discovery
# failed.
finished=0
for _ in $(seq 1 1200); do
    if ! kill -0 "$frontend_pid" 2>/dev/null; then
        echo "FAIL  frontend exited under replica loss:" >&2
        tail -20 "$LOG" >&2
        exit 1
    fi
    if grep -q 'total traffic:' "$LOG"; then
        finished=1
        break
    fi
    sleep 0.1
done

fail=0
check() { # check NAME VALUE TEST...
    local name=$1 value=$2
    shift 2
    if [ -z "$value" ] || ! [ "$value" "$@" ]; then
        echo "FAIL  $name = '$value' (want $*)" >&2
        fail=1
    else
        echo "ok    $name = $value"
    fi
}

check waves_completed "$finished" -eq 1
if grep -q 'PARTIAL' "$LOG"; then
    echo "FAIL  a discovery degraded to PARTIAL despite a live replica per group" >&2
    grep -m 3 'PARTIAL' "$LOG" >&2
    fail=1
else
    echo "ok    no discovery degraded to PARTIAL"
fi

# metric ENDPOINT KEY prints the key's value, failing if absent.
metric() {
    curl -sf "http://$1/metrics" | tr -d ' ' | tr ',{}' '\n\n\n' \
        | awk -F: -v k="\"$2\"" '$1 == k { print $2; found = 1 } END { exit !found }'
}

check replica.failovers \
    "$(metric "$FRONTEND_OBS" replica.failovers || true)" -gt 0
check replica.demotions \
    "$(metric "$FRONTEND_OBS" replica.demotions || true)" -gt 0

if [ "$fail" -ne 0 ]; then
    echo "replication smoke failed" >&2
    exit 1
fi

# Leakage gate: failover and repair must not change what any one cloud
# store observes. Race detector on, like CI runs the suite.
echo "running leakage-invariant suite (race) ..."
go test -race -run 'TestLeakageInvariant' .

echo "replication smoke passed"
