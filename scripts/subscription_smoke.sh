#!/usr/bin/env bash
# subscription_smoke.sh — end-to-end smoke of streaming discovery
# subscriptions (DESIGN.md §18).
#
# Brings up a real 2-shard deployment (two pisd-server processes), builds
# the dynamic index through a frontend with 100 standing subscriptions,
# drives a churn wave of inserts and deletes against the live index, and
# gates on the subscription contract:
#
#   - the frontend finishes the whole workload (registration, churn wave,
#     discovery wave) without a single failure,
#   - the notification stream demonstrably flowed: the frontend's
#     /metrics report subs.notifications > 0 and subs.registered == 100,
#   - the wire codec round-trips: every notification frame the frontend
#     wrote decodes cleanly in pisd-client,
#   - zero oracle mismatches: the oracle-differential churn suite passes
#     (every notification slot-exactly equal to the plaintext oracle's
#     prediction),
#   - the subscription leakage invariant holds under the race detector —
#     cloud and transport counters move identically with 20 subscriptions
#     and with none.
set -euo pipefail
cd "$(dirname "$0")/.."

FRONTEND_OBS=127.0.0.1:9340
BASE_PORT=7340
HOST=127.0.0.1

BIN="$(mktemp -d)"
LOG="$BIN/frontend.log"
NOTIFY="$BIN/notify.bin"
declare -a server_pids=()
frontend_pid=""
cleanup() {
    [ -n "$frontend_pid" ] && kill "$frontend_pid" 2>/dev/null || true
    for pid in "${server_pids[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/pisd-server" ./cmd/pisd-server
go build -o "$BIN/pisd-frontend" ./cmd/pisd-frontend
go build -o "$BIN/pisd-client" ./cmd/pisd-client

ADDRS=""
for i in 0 1; do
    port=$((BASE_PORT + i))
    "$BIN/pisd-server" -addr "$HOST:$port" &
    server_pids+=($!)
    ADDRS="$ADDRS,$HOST:$port"
done
ADDRS="${ADDRS#,}"

for i in 0 1; do
    port=$((BASE_PORT + i))
    up=0
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/$HOST/$port") 2>/dev/null; then
            exec 3>&- 3<&-
            up=1
            break
        fi
        sleep 0.2
    done
    if [ "$up" -ne 1 ]; then
        echo "FAIL  shard server on port $port never came up" >&2
        exit 1
    fi
done

# 100 standing subscriptions over a 500-user population, then a churn
# wave of 60 operations; every standing-result change streams to the log
# and (as wire frames) to $NOTIFY. -obs keeps the process alive for the
# metrics gates.
"$BIN/pisd-frontend" -cloud "$ADDRS" -users 500 -dim 96 \
    -subscribe 100 -churn 60 -k 5 -discover 1,2,3 \
    -notify-out "$NOTIFY" -obs "$FRONTEND_OBS" >"$LOG" 2>&1 &
frontend_pid=$!

finished=0
for _ in $(seq 1 1200); do
    if ! kill -0 "$frontend_pid" 2>/dev/null; then
        echo "FAIL  frontend died during the subscription workload:" >&2
        tail -20 "$LOG" >&2
        exit 1
    fi
    if grep -q 'total traffic:' "$LOG"; then
        finished=1
        break
    fi
    sleep 0.1
done

fail=0
check() { # check NAME VALUE TEST...
    local name=$1 value=$2
    shift 2
    if [ -z "$value" ] || ! [ "$value" "$@" ]; then
        echo "FAIL  $name = '$value' (want $*)" >&2
        fail=1
    else
        echo "ok    $name = $value"
    fi
}

check workload_completed "$finished" -eq 1
check registered_line "$(grep -c '100 standing queries registered' "$LOG" || true)" -ge 1
check churn_wave_done "$(grep -c 'churn wave done' "$LOG" || true)" -ge 1
check notifications_streamed "$(grep -c 'notify\[seq ' "$LOG" || true)" -gt 0

# metric ENDPOINT KEY prints the key's value, failing if absent.
metric() {
    curl -sf "http://$1/metrics" | tr -d ' ' | tr ',{}' '\n\n\n' \
        | awk -F: -v k="\"$2\"" '$1 == k { print $2; found = 1 } END { exit !found }'
}

check subs.registered "$(metric "$FRONTEND_OBS" subs.registered || true)" -eq 100
check subs.notifications "$(metric "$FRONTEND_OBS" subs.notifications || true)" -gt 0
check subs.evals "$(metric "$FRONTEND_OBS" subs.evals || true)" -gt 0

# Wire-codec gate: every notification frame the frontend streamed must
# decode cleanly client-side, and the counts must agree.
decoded="$("$BIN/pisd-client" -notifications "$NOTIFY" | awk '/^decoded /{print $2}')"
streamed="$(grep -c 'notify\[seq ' "$LOG" || true)"
check decoded_frames "$decoded" -gt 0
check decoded_equals_streamed "$decoded" -eq "$streamed"

if [ "$fail" -ne 0 ]; then
    echo "subscription smoke failed" >&2
    tail -20 "$LOG" >&2
    exit 1
fi

# Oracle gate: zero mismatches between the serving path's notifications
# and the plaintext oracle over a seeded churn run (the full seed matrix
# runs in the simulation CI job).
echo "running oracle-differential churn suite (seed 1) ..."
PISD_SIM_SEEDS=1 go test -run 'TestSubscriptionChurnAgainstOracle' .

# Leakage gate: N live subscriptions must not move a single cloud or
# transport counter differently from zero subscriptions. Race detector
# on, like CI runs the suite.
echo "running subscription leakage invariant (race) ..."
go test -race -run 'TestLeakageInvariantSubscriptions' .

echo "subscription smoke passed"
