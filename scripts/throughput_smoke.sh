#!/usr/bin/env bash
# throughput_smoke.sh — multi-core serving-path smoke (PR7).
#
# Two assertions, both cheap enough for CI:
#
#  1. Throughput: the serving path (concurrent lockstep clients through
#     the admission gate, result cache, batch coalescer and per-shard
#     connection pool) beats the single-connection lockstep baseline on
#     sustained qps. Runs with GOMAXPROCS >= 4 so the coalescer and the
#     pooled connections actually overlap work.
#  2. Leakage: the leakage-invariant suite — including
#     TestLeakageInvariantServingCache, which pins that a cache hit
#     issues ZERO bucket unmasks — still passes under the race detector
#     with coalescing and the cache in the path.
#
# Usage: scripts/throughput_smoke.sh
#   BENCHTIME=4s scripts/throughput_smoke.sh   # stabler qps comparison
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
GOMAXPROCS="$(go env GOMAXPROCS 2>/dev/null || nproc)"
if [ "$GOMAXPROCS" -lt 4 ]; then
    GOMAXPROCS=4
fi
export GOMAXPROCS
echo "GOMAXPROCS=$GOMAXPROCS benchtime=$BENCHTIME"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' \
    -bench 'BenchmarkThroughput_DiscoverySerial$|BenchmarkThroughput_DiscoverLockstep' \
    -benchtime "$BENCHTIME" . | tee "$TMP"

# qps NAME extracts a benchmark's reported qps (integer part).
qps() {
    awk -v b="$1" '$1 ~ "^"b {
        for (i = 2; i <= NF; i++) if ($i == "qps") { printf "%d\n", $(i-1); exit }
    }' "$TMP"
}

serial="$(qps BenchmarkThroughput_DiscoverySerial)"
coalesced="$(qps BenchmarkThroughput_DiscoverLockstepCoalesced)"
cached="$(qps BenchmarkThroughput_DiscoverLockstepCached)"
if [ -z "$serial" ] || [ -z "$coalesced" ] || [ -z "$cached" ]; then
    echo "FAIL  missing qps metrics (serial='$serial' coalesced='$coalesced' cached='$cached')" >&2
    exit 1
fi
echo "qps: serial=$serial coalesced=$coalesced cached=$cached"

# The full serving path must beat the lockstep baseline outright. The
# cache-off coalesced point is reported above for the scaling record but
# only gated loosely: on a single hardware core coalescing cannot beat a
# lockstep client by much (there is no parallelism to recover), so it
# must merely stay within 30% of serial rather than regress badly.
if [ "$cached" -le "$serial" ]; then
    echo "FAIL  serving path (cached) $cached qps <= serial baseline $serial qps" >&2
    exit 1
fi
if [ $((coalesced * 10)) -lt $((serial * 7)) ]; then
    echo "FAIL  coalesced $coalesced qps fell below 70% of serial $serial qps" >&2
    exit 1
fi

# Leakage invariants with the serving path in front: race detector on.
go test -race -run 'TestLeakageInvariant' -count=1 .

echo "throughput smoke passed"
