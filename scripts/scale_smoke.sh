#!/usr/bin/env bash
# scale_smoke.sh — bounded-memory segmented build at scale.
#
# Two assertions back the segmented store's headline claims (DESIGN.md
# §14):
#
#   1. A 100k-user population streams through pisd-segbuild into an
#      on-disk segmented index under a fixed RSS budget, and every sampled
#      SecRec answer is byte-identical to the monolithic in-RAM index
#      built from the same metadata (-verify).
#   2. The segmented/monolithic equivalence property tests — including
#      queries racing a live compaction — pass under the race detector.
#
# The RSS budget is deliberately far below what materializing the 100k
# plaintext profiles at once would need: it fails if streaming regresses
# into buffering the population.
set -euo pipefail
cd "$(dirname "$0")/.."

USERS="${USERS:-100000}"
DIM="${DIM:-100}"
BATCH="${BATCH:-10000}"
RSS_BUDGET_MB="${RSS_BUDGET_MB:-600}"

BIN="$(mktemp -d)"
cleanup() { rm -rf "$BIN"; }
trap cleanup EXIT

echo "== equivalence property tests (race detector) =="
go test -race -run 'Equivalence|Matches|CrashWindow|Corrupt' \
    ./internal/segstore ./internal/cloud ./internal/frontend

echo "== ${USERS}-user segmented build, RSS budget ${RSS_BUDGET_MB} MB =="
go build -o "$BIN/pisd-segbuild" ./cmd/pisd-segbuild
"$BIN/pisd-segbuild" -users "$USERS" -dim "$DIM" -batch "$BATCH" \
    -out "$BIN/segments" -queries 32 -verify \
    -rss-budget-mb "$RSS_BUDGET_MB" -bench "$BIN/bench.json"
cat "$BIN/bench.json"

echo "scale smoke passed"
