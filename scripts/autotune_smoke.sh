#!/usr/bin/env bash
# autotune_smoke.sh — CI smoke for the recall/cost autotuner.
#
# Three assertions, all in seconds, all reproducible from seed 1:
#
#   1. The tuner's own test suite passes: determinism (two runs of one
#      seed produce byte-identical reports), the pinned tiny-grid winner,
#      dominance pruning, skyline extraction and the measured-run
#      invariants (buckets/query == l·(d+1) budget exactly).
#   2. The pisd-autotune CLI, on the seeded 2000-user smoke dataset with
#      the tiny grid, reproduces the known-dominant config
#      l=6 k=4 W=1 d=4 parts=1 as its measured winner with a ≥25% budget
#      reduction, and exits 0.
#   3. The leakage-invariant suite — including TestLeakageInvariantTuned,
#      which drives discoveries through ConfigForPopulation's tuned
#      operating point — passes under the race detector: tuned parameters
#      change the size of the fixed bucket budget, never its constancy.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== autotune test suite =="
go test ./internal/autotune/ ./cmd/pisd-autotune/

echo "== tuner reproduces the known-dominant config =="
BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/pisd-autotune" ./cmd/pisd-autotune
"$BIN/pisd-autotune" -users 2000 -dim 128 -queries 24 -seed 1 -grid tiny \
    -out "$BIN/frontier.json" | tee "$BIN/run.log"

grep -q 'winner l=6 k=4 W=1 d=4 parts=1' "$BIN/run.log" || {
    echo "FAIL: expected winner l=6 k=4 W=1 d=4 parts=1" >&2
    echo "repro: go run ./cmd/pisd-autotune -users 2000 -dim 128 -queries 24 -seed 1 -grid tiny" >&2
    exit 1
}
python3 - "$BIN/frontier.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
w = rep["winner"]
assert w is not None, "no winner in report"
assert rep["budget_reduction"] >= 0.25, f"budget reduction {rep['budget_reduction']} < 0.25"
assert w["measured"] is not None, "winner was not measured on the secure stack"
print(f"ok    winner budget {w['budget']} vs reference {rep['reference']['budget']}"
      f" (-{rep['budget_reduction']:.0%}), measured secure recall {w['measured']['recall']:.4f}")
EOF

echo "== leakage invariant under the tuned config (race) =="
go test -race -run 'TestLeakageInvariant' .

echo "autotune smoke passed"
