// DESIGN.md §18's claim, checked end to end through counters: standing
// subscriptions are invisible to the cloud and the wire. Two deployments
// built from identical seeds and keys run the identical update batch over
// real TCP transport — one with N active subscriptions evaluating and
// notifying on every mutation, one with none — and every per-shard cloud
// counter delta and every process transport counter delta must be
// byte-identical between the two. Registration itself is also pinned:
// after its seed search pattern is in the result cache, registering a
// subscription moves no cloud or transport counter at all.
package pisd_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/lsh"
	"pisd/internal/obs"
	"pisd/internal/shard"
	"pisd/internal/subs"
	"pisd/internal/transport"
)

const (
	leakSubUsers  = 120
	leakSubDim    = 48
	leakSubShards = 2
	leakSubN      = 20 // active subscriptions in the subscribing world
)

// leakSubWorld is one of the two twin deployments: sharded dynamic
// indexes behind real transport servers, per-shard cloud registries.
type leakSubWorld struct {
	f       *frontend.Frontend
	ds      *dataset.Dataset
	serving *frontend.DynServing
	regs    []*obs.Registry
	notes   []subs.Notification
}

// newLeakSubWorld builds one twin. Both twins use the SAME key seed and
// dataset seed, so their key material, DRBG streams, placements and
// ciphertexts are identical — any counter divergence between them is
// attributable to the one variable that differs: active subscriptions.
func newLeakSubWorld(t *testing.T) *leakSubWorld {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Users: leakSubUsers + 100, Dim: leakSubDim, Topics: 8, TopicsPerUser: 2,
		ActiveWords: 12, Noise: 0.02, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := frontend.New(frontend.Config{
		LSH:        lsh.Params{Dim: leakSubDim, Tables: 5, Atoms: 2, Width: 0.8, Seed: 9},
		LoadFactor: 0.6,
		ProbeRange: 4,
		MaxLoop:    300,
		MaxRehash:  3,
		Seed:       9,
		KeySeed:    "leakage-subscriptions",
	})
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]frontend.Upload, leakSubUsers)
	for i := 0; i < leakSubUsers; i++ {
		uploads[i] = frontend.Upload{ID: uint64(i + 1), Profile: ds.Profiles[i], Meta: f.ComputeMeta(ds.Profiles[i])}
	}
	built, err := f.BuildShardedDynamicIndex(uploads, leakSubShards, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := &leakSubWorld{f: f, ds: ds, regs: make([]*obs.Registry, leakSubShards)}
	nodes := make([]frontend.DynNode, leakSubShards)
	for s := range built {
		cs := cloud.New()
		w.regs[s] = obs.NewRegistry()
		cs.SetRegistry(w.regs[s])
		srv := transport.NewServer(cs)
		ln, err := netListen(t)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(ln); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		remote := shard.NewRemote(ln.Addr().String())
		remote.SetTimeout(5 * time.Second)
		t.Cleanup(func() { remote.Close() })
		if err := remote.InstallDynIndex(built[s].Index); err != nil {
			t.Fatal(err)
		}
		if err := remote.PutProfiles(built[s].EncProfiles); err != nil {
			t.Fatal(err)
		}
		nodes[s] = remote
	}
	w.serving, err = f.NewDynServing(built, nodes, nil, frontend.ServingConfig{CacheEntries: 128})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// warm runs the N subscriber seed-search patterns, filling the result
// cache identically in both twins (and consuming identical traffic).
func (w *leakSubWorld) warm(t *testing.T) {
	t.Helper()
	for i := 0; i < leakSubN; i++ {
		if _, partial, err := w.serving.Search(w.ds.Profiles[i], 5, 0); err != nil || partial {
			t.Fatalf("warm search %d: partial=%v err=%v", i, partial, err)
		}
	}
}

// runBatch applies the identical update script: inserts (every third one
// an exact duplicate of a subscribed profile, guaranteeing evaluations
// and notifications in the subscribing twin), deletes and repeat
// searches.
func (w *leakSubWorld) runBatch(t *testing.T) {
	t.Helper()
	for i := 0; i < 9; i++ {
		id := uint64(leakSubUsers + 1 + i)
		profile := w.ds.Profiles[leakSubUsers+i]
		if i%3 == 0 {
			profile = w.ds.Profiles[i%leakSubN] // duplicate of subscriber i+1
		}
		if err := w.serving.Insert(id, profile); err != nil {
			t.Fatalf("batch insert %d: %v", id, err)
		}
	}
	for _, id := range []uint64{2, 7, 11} {
		if err := w.serving.Delete(id, w.ds.Profiles[id-1]); err != nil {
			t.Fatalf("batch delete %d: %v", id, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, partial, err := w.serving.Search(w.ds.Profiles[5], 5, 0); err != nil || partial {
			t.Fatalf("batch search: partial=%v err=%v", partial, err)
		}
	}
}

func (w *leakSubWorld) cloudSnapshots() []map[string]int64 {
	out := make([]map[string]int64, len(w.regs))
	for s, reg := range w.regs {
		out[s] = counters(reg)
	}
	return out
}

// counterDelta returns the per-key movement between two snapshots,
// dropping zero deltas so maps compare independent of key presence.
func counterDelta(before, after map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

func TestLeakageInvariantSubscriptions(t *testing.T) {
	// Isolate transport and subscription metrics so deltas are
	// attributable to this test alone.
	treg := obs.NewRegistry()
	transport.SetRegistry(treg)
	defer transport.SetRegistry(obs.Default)
	sreg := obs.NewRegistry()
	subs.SetRegistry(sreg)
	defer subs.SetRegistry(obs.Default)

	withSubs := newLeakSubWorld(t)
	withoutSubs := newLeakSubWorld(t)
	withSubs.warm(t)
	withoutSubs.warm(t)

	// Registration is invisible: with its search pattern cached, each of
	// the N Subscribe calls is a pure frontend computation — zero movement
	// on every cloud counter of every shard and on every transport
	// counter.
	withSubs.serving.AttachSubscriptions(func(n subs.Notification) {
		withSubs.notes = append(withSubs.notes, n)
	})
	cloudBefore := withSubs.cloudSnapshots()
	wireBefore := counters(treg)
	for i := 0; i < leakSubN; i++ {
		if _, err := withSubs.serving.Subscribe(uint64(i+1), withSubs.ds.Profiles[i], 3); err != nil {
			t.Fatalf("subscribe %d: %v", i+1, err)
		}
	}
	for s, before := range cloudBefore {
		if d := counterDelta(before, counters(withSubs.regs[s])); len(d) != 0 {
			t.Fatalf("registering %d subscriptions moved cloud counters on shard %d: %v", leakSubN, s, d)
		}
	}
	if d := counterDelta(wireBefore, counters(treg)); len(d) != 0 {
		t.Fatalf("registering %d subscriptions moved transport counters: %v", leakSubN, d)
	}
	if got := sreg.Snapshot().Gauges["subs.registered"]; got != leakSubN {
		t.Fatalf("subs.registered = %d, want %d", got, leakSubN)
	}

	// The identical update batch, measured per twin.
	cloudBefore = withSubs.cloudSnapshots()
	wireBefore = counters(treg)
	withSubs.runBatch(t)
	subCloud := make([]map[string]int64, leakSubShards)
	for s := range withSubs.regs {
		subCloud[s] = counterDelta(cloudBefore[s], counters(withSubs.regs[s]))
	}
	subWire := counterDelta(wireBefore, counters(treg))

	cloudBefore = withoutSubs.cloudSnapshots()
	wireBefore = counters(treg)
	withoutSubs.runBatch(t)
	bareCloud := make([]map[string]int64, leakSubShards)
	for s := range withoutSubs.regs {
		bareCloud[s] = counterDelta(cloudBefore[s], counters(withoutSubs.regs[s]))
	}
	bareWire := counterDelta(wireBefore, counters(treg))

	// The differential: N live subscriptions evaluated on every mutation,
	// yet every observable counter moved identically to the
	// zero-subscription twin.
	for s := 0; s < leakSubShards; s++ {
		if !reflect.DeepEqual(subCloud[s], bareCloud[s]) {
			t.Errorf("shard %d cloud deltas differ:\nwith subscriptions: %v\nwithout:            %v",
				s, subCloud[s], bareCloud[s])
		}
	}
	if !reflect.DeepEqual(subWire, bareWire) {
		t.Errorf("transport deltas differ:\nwith subscriptions: %v\nwithout:            %v", subWire, bareWire)
	}

	// And the subscriptions were demonstrably ACTIVE: duplicate-profile
	// inserts entered standing results and notified.
	if len(withSubs.notes) == 0 {
		t.Fatal("no notifications emitted — the subscribing twin verified nothing")
	}
	sc := sreg.Snapshot().Counters
	if sc["subs.notifications"] == 0 || sc["subs.evals"] == 0 {
		t.Fatalf("subscription metrics did not move: %v", sc)
	}
	for i := 0; i < leakSubN; i++ {
		if _, ok := withSubs.serving.Subscriptions().TopK(uint64(i + 1)); !ok {
			t.Fatalf("subscription %d vanished", i+1)
		}
	}
}
