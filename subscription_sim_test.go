// Oracle-differential churn suite for streaming discovery subscriptions
// (DESIGN.md §18): a replicated dynamic deployment serves standing top-k
// queries through DynServing while the plaintext SubOracle independently
// mirrors every standing result and predicts the exact notification
// stream. Every mutation's emitted notifications — and their absence —
// are diffed slot-exactly (SubID, entering id, distance, evicted id,
// promotion flag; sequence numbers are checked for strict monotonicity
// separately), across fault-free churn, mid-churn replica kills with
// anti-entropy repair, and random link chaos. A failing seed prints a
// one-line repro and lands in the PISD_SIM_FAILURE_FILE artifact like the
// other simulation suites.
package pisd_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pisd/internal/frontend"
	"pisd/internal/subs"
)

func TestSubscriptionChurnAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	for _, seed := range repSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Cleanup(func() {
				if t.Failed() {
					recordFailingSeedFor(t, seed, "TestSubscriptionChurnAgainstOracle")
				}
			})
			p := deriveRepParams(seed)
			t.Logf("seed %d: users=%d partitions=%d replicas=%d k=%d",
				seed, p.users, p.partitions, p.replicas, p.k)
			runSubscriptionChurn(t, p)
		})
	}
}

// subWorld drives the subscription serving surface over a replicated
// dynamic world and mirrors every transition with the plaintext oracle.
type subWorld struct {
	t       *testing.T
	w       *repDynWorld
	serving *frontend.DynServing
	oracle  *frontend.SubOracle
	subIDs  []uint64

	got     []subs.Notification
	lastSeq uint64
	total   int

	// shaky marks shards where a chaos-phase insert failed mid-protocol:
	// a broken kick chain there may legitimately lose index reachability,
	// so own-profile reachability is not asserted for that shard's users.
	shaky map[int]bool
}

func newSubWorld(t *testing.T, w *repDynWorld) *subWorld {
	t.Helper()
	sw := &subWorld{t: t, w: w, shaky: make(map[int]bool)}
	serving, err := w.f.NewDynServing(w.shards, w.nodes, w.owner, frontend.ServingConfig{CacheEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	serving.AttachSubscriptions(func(n subs.Notification) { sw.got = append(sw.got, n) })
	sw.serving = serving
	oracle, err := w.f.NewSubOracle(w.shards, w.owner)
	if err != nil {
		t.Fatal(err)
	}
	for id, prof := range w.profiles {
		oracle.PutProfile(id, prof)
	}
	sw.oracle = oracle
	return sw
}

// drain collects the notifications emitted since the last call, checking
// global sequence numbers stay strictly increasing.
func (sw *subWorld) drain() []subs.Notification {
	sw.t.Helper()
	out := sw.got
	sw.got = nil
	for _, n := range out {
		if n.Seq <= sw.lastSeq {
			sw.t.Fatalf("notification seq %d not strictly increasing (last %d)", n.Seq, sw.lastSeq)
		}
		sw.lastSeq = n.Seq
	}
	sw.total += len(out)
	return out
}

// diffNotifications compares an emitted run against the oracle's
// prediction slot-exactly, ignoring only the global sequence number.
func diffNotifications(got, want []subs.Notification) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d notifications, want %d (got %+v, want %+v)", len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.SubID != w.SubID || g.ID != w.ID || g.Distance != w.Distance ||
			g.EvictedID != w.EvictedID || g.Promoted != w.Promoted {
			return fmt.Errorf("notification %d = %+v, want %+v (ignoring Seq)", i, g, w)
		}
	}
	return nil
}

// diffEntries compares two standing results slot-exactly.
func diffEntries(got, want []subs.Entry) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d entries, want %d (got %v, want %v)", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// subscribe registers a standing query for live user subID on both the
// serving path and the oracle, comparing the initial standing results.
// The preceding full-depth search both warms the registration's cache
// entry and hands the oracle the REAL seed candidate set — dynamic
// placement is kick-history-dependent, so the oracle mirrors everything
// downstream of the seed rather than re-deriving it.
func (sw *subWorld) subscribe(stage string, subID uint64, k int) {
	sw.t.Helper()
	profile := sw.w.profiles[subID]
	matches, partial, err := sw.serving.Search(profile, sw.w.bigK(), 0)
	if err != nil {
		sw.t.Fatalf("%s: seed search for sub %d: %v", stage, subID, err)
	}
	if partial {
		sw.t.Fatalf("%s: seed search for sub %d degraded to partial", stage, subID)
	}
	if n := sw.drain(); len(n) != 0 {
		sw.t.Fatalf("%s: search emitted %d notifications", stage, len(n))
	}
	seedIDs := make([]uint64, len(matches))
	for i, m := range matches {
		seedIDs[i] = m.ID
	}
	gotEntries, err := sw.serving.Subscribe(subID, profile, k)
	if err != nil {
		sw.t.Fatalf("%s: subscribe %d: %v", stage, subID, err)
	}
	wantEntries, err := sw.oracle.Register(subID, k, profile, seedIDs)
	if err != nil {
		sw.t.Fatalf("%s: oracle register %d: %v", stage, subID, err)
	}
	if err := diffEntries(gotEntries, wantEntries); err != nil {
		sw.t.Fatalf("%s: sub %d initial standing result: %v", stage, subID, err)
	}
	if n := sw.drain(); len(n) != 0 {
		sw.t.Fatalf("%s: registration emitted %d notifications, want 0 (seeding is silent)", stage, len(n))
	}
	sw.subIDs = append(sw.subIDs, subID)
}

// insert pushes one profile through the serving path and diffs the
// emitted notifications against the oracle. Under faults a transport
// failure is tolerated — the hook must then stay silent and the owning
// shard is marked shaky.
func (sw *subWorld) insert(stage string, profile []float64, faults bool) {
	sw.t.Helper()
	w := sw.w
	id := w.nextID
	w.nextID++
	if profile == nil {
		profile = w.ds.Profiles[int(id)%len(w.ds.Profiles)]
	}
	sw.oracle.PutProfile(id, profile)
	w.profiles[id] = profile
	if err := sw.serving.Insert(id, profile); err != nil {
		if !faults || !isTransportFault(err) {
			sw.t.Fatalf("%s: insert %d: %v", stage, id, err)
		}
		if n := sw.drain(); len(n) != 0 {
			sw.t.Fatalf("%s: FAILED insert %d emitted %d notifications", stage, id, len(n))
		}
		sw.shaky[w.owner(id)] = true
		return
	}
	w.live[id] = true
	want, err := sw.oracle.Insert(id, profile)
	if err != nil {
		sw.t.Fatalf("%s: oracle insert %d: %v", stage, id, err)
	}
	if err := diffNotifications(sw.drain(), want); err != nil {
		sw.t.Fatalf("%s: insert %d: %v", stage, id, err)
	}
}

// insertOwned inserts a fresh profile owned by shard s through the
// serving path (forces the dead replica of group s to miss a write).
func (sw *subWorld) insertOwned(stage string, s int) {
	sw.t.Helper()
	for sw.w.owner(sw.w.nextID) != s {
		sw.w.nextID++
	}
	sw.insert(stage, nil, false)
}

// deleteOne deletes a random live user and diffs the promotion
// notifications. Only used in phases where every op must succeed.
func (sw *subWorld) deleteOne(stage string, rng *rand.Rand) {
	sw.t.Helper()
	w := sw.w
	id := w.pickLive(rng)
	if id == 0 {
		return
	}
	if err := sw.serving.Delete(id, w.profiles[id]); err != nil {
		sw.t.Fatalf("%s: delete %d: %v", stage, id, err)
	}
	delete(w.live, id)
	w.deleted[id] = true
	want := sw.oracle.Delete(id)
	if err := diffNotifications(sw.drain(), want); err != nil {
		sw.t.Fatalf("%s: delete %d: %v", stage, id, err)
	}
}

// search runs one serving search: results validated against plaintext
// membership, and — crucially — reads must never emit notifications.
func (sw *subWorld) search(stage string, rng *rand.Rand, faults bool) {
	sw.t.Helper()
	w := sw.w
	var wantID uint64
	var target []float64
	if id := w.pickLive(rng); id != 0 && rng.Intn(2) == 0 && !sw.shaky[w.owner(id)] {
		wantID, target = id, w.profiles[id]
	} else {
		target = w.ds.Profiles[rng.Intn(len(w.ds.Profiles))]
	}
	got, partial, err := sw.serving.Search(target, w.bigK(), 0)
	if err != nil {
		if faults && isTransportFault(err) {
			return
		}
		sw.t.Fatalf("%s: search: %v", stage, err)
	}
	if n := sw.drain(); len(n) != 0 {
		sw.t.Fatalf("%s: search emitted %d notifications", stage, len(n))
	}
	if partial {
		if faults {
			return // every replica of some group faulted at once
		}
		sw.t.Fatalf("%s: partial result with a live replica in every group", stage)
	}
	if cerr := w.checkSearch(target, got, false, wantID); cerr != nil {
		sw.t.Fatalf("%s (seed %d): %v", stage, w.p.seed, cerr)
	}
}

// churnOps runs n mixed operations (inserts, deletes, searches) through
// the serving path; deletes are skipped under faults so a mid-protocol
// failure can never be mistaken for a deletion by either side.
func (sw *subWorld) churnOps(stage string, rng *rand.Rand, n int, faults bool) {
	sw.t.Helper()
	for op := 0; op < n; op++ {
		switch r := rng.Intn(10); {
		case r < 4:
			sw.insert(stage, nil, faults)
		case r < 6 && !faults:
			sw.deleteOne(stage, rng)
		default:
			sw.search(stage, rng, faults)
		}
	}
}

func runSubscriptionChurn(t *testing.T, p repParams) {
	w := newRepDynWorld(t, p)
	sw := newSubWorld(t, w)
	rng := rand.New(rand.NewSource(p.seed*913 + 7))
	ctx := context.Background()

	// Phase A — fault-free: register one subscriber per partition, churn,
	// and force at least one guaranteed notification by inserting an exact
	// duplicate of subscriber 1's profile (same metadata ⇒ same bucket
	// write set ⇒ certain intersection, distance 0 ⇒ certain entry).
	for s := 0; s < p.partitions; s++ {
		sw.subscribe("phase A", uint64(s+1), p.k)
	}
	sw.churnOps("phase A churn", rng, 10, false)
	sw.insert("phase A forced duplicate", w.profiles[1], false)
	if sw.total == 0 {
		t.Fatal("phase A: duplicate-profile insert produced no notification")
	}

	// Phase B — mid-churn replica kills: replica 0 of every group dies
	// between ops, siblings absorb every mutation, notifications stay
	// slot-exact throughout. After heal + anti-entropy repair, the OTHER
	// replicas die, so churn and a fresh registration are served entirely
	// by the repaired replicas — the differential proof that repair
	// restored the logical state standing queries depend on.
	for s := range w.groups {
		w.killReplica(s, 0)
		sw.churnOps("phase B kill", rng, 2, false)
		sw.insertOwned("phase B kill", s)
	}
	w.probe(2)
	sw.churnOps("phase B replica 0 down", rng, 6, false)
	for s := range w.groups {
		w.healReplica(s, 0)
	}
	w.probe(1)
	if repaired := w.repairer.RepairOnce(ctx); repaired != len(w.groups) {
		t.Fatalf("phase B: RepairOnce repaired %d replicas, want %d", repaired, len(w.groups))
	}
	for s := range w.groups {
		for r := 1; r < p.replicas; r++ {
			w.killReplica(s, r)
		}
	}
	w.probe(2)
	var extraSub uint64
	for tries := 0; tries < 4 && extraSub == 0; tries++ {
		if cand := w.pickLive(rng); cand != 0 && !subscribed(sw.subIDs, cand) {
			extraSub = cand
		}
	}
	if extraSub != 0 {
		sw.subscribe("phase B repaired replicas serving alone", extraSub, p.k)
	}
	sw.churnOps("phase B repaired alone", rng, 4, false)
	for s := range w.groups {
		for r := 1; r < p.replicas; r++ {
			w.healReplica(s, r)
		}
	}
	w.probe(1)
	w.repairer.RepairOnce(ctx)

	// Phase C — random link chaos: inserts and searches under the seeded
	// fault schedule. Failed ops must stay silent on both sides; completed
	// ops must still diff slot-exactly.
	w.net.SetEnabled(true)
	for op := 0; op < 10; op++ {
		if rng.Intn(2) == 0 {
			sw.insert("phase C chaos", nil, true)
		} else {
			sw.search("phase C chaos", rng, true)
		}
	}
	if cand := w.pickLive(rng); cand != 0 && !subscribed(sw.subIDs, cand) {
		// Registration under chaos: the seed search may fault (tolerated);
		// once it completes, Subscribe itself is a pure cache-hit + PRF
		// computation and must succeed.
		if matches, partial, err := sw.serving.Search(w.profiles[cand], w.bigK(), 0); err == nil && !partial {
			sw.drain()
			seedIDs := make([]uint64, len(matches))
			for i, m := range matches {
				seedIDs[i] = m.ID
			}
			gotE, err := sw.serving.Subscribe(cand, w.profiles[cand], p.k)
			if err != nil {
				t.Fatalf("phase C: subscribe %d after complete seed search: %v", cand, err)
			}
			wantE, err := sw.oracle.Register(cand, p.k, w.profiles[cand], seedIDs)
			if err != nil {
				t.Fatalf("phase C: oracle register %d: %v", cand, err)
			}
			if err := diffEntries(gotE, wantE); err != nil {
				t.Fatalf("phase C: sub %d initial standing result: %v", cand, err)
			}
			sw.subIDs = append(sw.subIDs, cand)
		} else if err != nil && !isTransportFault(err) {
			t.Fatalf("phase C: seed search: %v", err)
		}
	}
	w.net.SetEnabled(false)

	// Phase D — convergence: faults off, fleet healed. The batched
	// re-score fan-out must find every standing candidate intact (0
	// corrections — nothing was silently lost), and every standing top-k
	// must equal the oracle's slot-exactly.
	w.probe(2)
	w.repairer.RepairOnce(ctx)
	changed, err := sw.serving.RescoreSubscriptions()
	if err != nil {
		t.Fatalf("phase D: rescore: %v", err)
	}
	if changed != 0 {
		t.Fatalf("phase D: rescore corrected %d candidates, want 0 (state drifted)", changed)
	}
	if n := sw.drain(); len(n) != 0 {
		t.Fatalf("phase D: rescore of a consistent state emitted %d notifications", len(n))
	}
	for _, subID := range sw.subIDs {
		got, ok := sw.serving.Subscriptions().TopK(subID)
		want, wok := sw.oracle.TopK(subID)
		if !ok || !wok {
			t.Fatalf("phase D: sub %d: serving ok=%v oracle ok=%v", subID, ok, wok)
		}
		if err := diffEntries(got, want); err != nil {
			t.Fatalf("phase D: sub %d final standing result: %v", subID, err)
		}
	}
	sw.churnOps("phase D convergence", rng, 4, false)
	t.Logf("seed %d: %d subscriptions, %d notifications verified slot-exactly", p.seed, len(sw.subIDs), sw.total)
	if sw.total == 0 {
		t.Fatal("no notification emitted over the whole run; the suite verified nothing")
	}
}

func subscribed(ids []uint64, id uint64) bool {
	for _, s := range ids {
		if s == id {
			return true
		}
	}
	return false
}
