package pisd

import (
	"bytes"
	"fmt"

	"pisd/internal/imaging"
	"pisd/internal/sharing"
)

// User-side image encryption (service flow step 1: "each Usr first
// encrypts all her images, then uploads them directly to CS"), with the
// Sec. III-E sharing semantics: images are encrypted under an attribute
// policy so friends holding satisfying keys can decrypt.

// EncryptedImage is one policy-protected image ready for upload.
type EncryptedImage struct {
	// Ciphertext carries the policy, wrapped keys and payload.
	Ciphertext *sharing.Ciphertext
}

// EncryptImage serializes the image (binary PGM) and encrypts it under the
// policy with the user's sharing authority.
func (u *User) EncryptImage(authority *SharingAuthority, policy SharingPolicy, im *Image) (*EncryptedImage, error) {
	if authority == nil {
		return nil, fmt.Errorf("pisd: user %d: nil sharing authority", u.ID)
	}
	var buf bytes.Buffer
	if err := imaging.WritePGM(&buf, im); err != nil {
		return nil, fmt.Errorf("pisd: user %d: encode image: %w", u.ID, err)
	}
	ct, err := authority.Encrypt(policy, buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("pisd: user %d: encrypt image: %w", u.ID, err)
	}
	return &EncryptedImage{Ciphertext: ct}, nil
}

// DecryptImage recovers an image with a friend's attribute keys.
func DecryptImage(keys *sharing.UserKeys, enc *EncryptedImage) (*Image, error) {
	if enc == nil || enc.Ciphertext == nil {
		return nil, fmt.Errorf("pisd: nil encrypted image")
	}
	pt, err := sharing.Decrypt(keys, enc.Ciphertext)
	if err != nil {
		return nil, err
	}
	im, err := imaging.ReadPGM(bytes.NewReader(pt))
	if err != nil {
		return nil, fmt.Errorf("pisd: decode decrypted image: %w", err)
	}
	return im, nil
}
