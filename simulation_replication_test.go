// Chaos-differential simulation of the replicated self-healing shard
// fleet: every partition is served by a replica group over real transport
// servers behind faultnet links, and the suite kills, partitions and
// heals replicas mid-run — including mid-churn — while checking every
// answer against the plaintext oracle. The replication contract under
// test is strictly stronger than the sharded baseline's: as long as at
// least one replica per group is alive, results must be COMPLETE and
// slot-exact against the full-population oracle — no healthy-subset
// masking, no partial flags. A dead replica is a sibling's problem, not
// the caller's.
//
// Per seed, five phases:
//
//	A. Scripted replica kills in the static world: each replica index is
//	   killed fleet-wide (pre- and post-demotion) and every discovery
//	   must stay complete and oracle-exact; failover/demotion/readmit
//	   counters must move accordingly.
//	B. Random link chaos: concurrent workers under the seeded faultnet
//	   schedule; completed results must be oracle-exact (or match a
//	   surviving-partition subset in the rare case every replica of a
//	   group faulted at once), failures must be typed transport faults.
//	C. Whole-group loss: killing every replica of one group degrades to
//	   a flagged partial over the survivors; killing everything is an
//	   error; healing restores exact complete results.
//	D. Dynamic churn with mid-churn kills: inserts/deletes/searches run
//	   while first one replica of every group is killed, repaired after
//	   healing, then the OTHER replica is killed — searches served by
//	   the repaired replica must stay exact, which is the differential
//	   proof that anti-entropy repair restored the full logical state.
//	   Ends with per-replica verification: every replica individually
//	   answers direct searches for the full live set and mirrors the
//	   profile store. Then a rebalance: a brand-new replica joins a
//	   group and is migrated online under concurrent churn.
//	E. Final convergence in the static world: faults off, everything
//	   healed — complete, oracle-exact answers.
//
// A failing seed is printed as a one-line repro and appended to the
// PISD_SIM_FAILURE_FILE artifact, like the base simulation suite.
package pisd_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/dataset"
	"pisd/internal/faultnet"
	"pisd/internal/frontend"
	"pisd/internal/lsh"
	"pisd/internal/obs"
	"pisd/internal/shard"
	"pisd/internal/transport"
	"pisd/internal/vec"
)

// repSeeds is the replication suite's seed set: PISD_SIM_SEEDS when set,
// otherwise seeds 1-5 (the CI gate).
func repSeeds(t *testing.T) []int64 {
	if os.Getenv("PISD_SIM_SEEDS") != "" {
		return simSeeds(t)
	}
	return []int64{1, 2, 3, 4, 5}
}

func TestSimulationReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	for _, seed := range repSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Cleanup(func() {
				if t.Failed() {
					recordFailingSeedFor(t, seed, "TestSimulationReplicated")
				}
			})
			p := deriveRepParams(seed)
			t.Logf("seed %d: users=%d partitions=%d replicas=%d k=%d plan=%+v",
				seed, p.users, p.partitions, p.replicas, p.k, p.plan)

			w := newRepWorld(t, p)
			runReplicaKillPhase(t, w)
			runReplicaChaosPhase(t, w)
			runGroupLossPhase(t, w)
			runReplicatedChurnPhase(t, p)
			runReplicaConvergencePhase(t, w)
		})
	}
}

// repParams is everything one replicated world derives from its seed.
type repParams struct {
	seed       int64
	users      int
	partitions int
	replicas   int
	k          int
	plan       faultnet.Plan
}

func deriveRepParams(seed int64) repParams {
	rng := rand.New(rand.NewSource(seed * 31))
	return repParams{
		seed:       seed,
		users:      100 + rng.Intn(60),
		partitions: 2 + rng.Intn(2),
		replicas:   2 + rng.Intn(2),
		k:          4 + rng.Intn(4),
		plan: faultnet.Plan{
			Seed:           seed,
			DialFailProb:   0.02,
			ReadFaultBytes: 8 << 10,
			ReadLatency:    2 * time.Millisecond,
			SlowReadBytes:  48,
			StallDelay:     250 * time.Millisecond,
			DropProb:       0.008 + 0.015*rng.Float64(),
			TruncateProb:   0.004 + 0.008*rng.Float64(),
			ResetProb:      0.004 + 0.008*rng.Float64(),
		},
	}
}

func repClientPeer(s, r int) string { return fmt.Sprintf("rep%d-%d", s, r) }
func repServerPeer(s, r int) string { return fmt.Sprintf("srv-rep%d-%d", s, r) }

// repWorld is one seeded replicated static deployment: partitions×replicas
// real transport servers, each replica behind its own faultnet peer pair,
// grouped into failover replica groups behind the fan-out pool.
type repWorld struct {
	t      *testing.T
	p      repParams
	net    *faultnet.Network
	f      *frontend.Frontend
	ds     *dataset.Dataset
	oracle *frontend.Oracle
	pool   *shard.Pool
	groups []*shard.ReplicaGroup
	prober *shard.Prober
	reg    *obs.Registry
}

func newRepWorld(t *testing.T, p repParams) *repWorld {
	t.Helper()
	fn := faultnet.New(p.plan)
	fn.SetEnabled(false)

	f, err := frontend.New(frontend.Config{
		LSH:        lsh.Params{Dim: 64, Tables: 6, Atoms: 2, Width: 0.8, Seed: p.seed},
		LoadFactor: 0.8,
		ProbeRange: 5,
		MaxLoop:    300,
		MaxRehash:  3,
		Seed:       p.seed,
		KeySeed:    fmt.Sprintf("sim-rep-%d", p.seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Config{
		Users: p.users, Dim: 64, Topics: 10, TopicsPerUser: 2,
		ActiveWords: 16, Noise: 0.02, Seed: p.seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]frontend.Upload, p.users)
	for i, prof := range ds.Profiles {
		uploads[i] = frontend.Upload{ID: uint64(i + 1), Profile: prof, Meta: f.ComputeMeta(prof)}
	}
	built, err := f.BuildShardedIndex(uploads, p.partitions, nil)
	if err != nil {
		t.Fatalf("BuildShardedIndex: %v", err)
	}
	oracle, err := f.BuildOracle(uploads)
	if err != nil {
		t.Fatalf("BuildOracle: %v", err)
	}

	w := &repWorld{t: t, p: p, net: fn, f: f, ds: ds, oracle: oracle, reg: obs.NewRegistry()}
	nodes := make([]shard.Node, p.partitions)
	for s := 0; s < p.partitions; s++ {
		members := make([]shard.ReplicaNode, p.replicas)
		for r := 0; r < p.replicas; r++ {
			members[r] = newRepServer(t, fn, repServerPeer(s, r), repClientPeer(s, r))
		}
		g, err := shard.NewReplicaGroup(s, shard.GroupConfig{}, members...)
		if err != nil {
			t.Fatal(err)
		}
		g.SetRegistry(w.reg)
		w.groups = append(w.groups, g)
		nodes[s] = g
	}
	pool, err := shard.NewPool(shard.Config{Timeout: 150 * time.Millisecond, Retries: 3}, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	pool.SetRegistry(w.reg)
	w.pool = pool
	w.prober = shard.NewProber(shard.ProberConfig{
		Timeout: 200 * time.Millisecond, DemoteAfter: 2, ReadmitAfter: 1,
	}, w.groups...)
	for s, sh := range built {
		if err := pool.InstallShard(s, sh.Index, sh.EncProfiles); err != nil {
			t.Fatalf("InstallShard(%d): %v", s, err)
		}
	}
	return w
}

// newRepServer brings up one replica: a transport server over a fresh
// cloud store, listening through the faultnet server peer, dialed through
// the faultnet client peer.
func newRepServer(t *testing.T, fn *faultnet.Network, serverPeer, clientPeer string) *shard.Remote {
	t.Helper()
	srv := transport.NewServer(cloud.New())
	ln, err := netListen(t)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(fn.WrapListener(serverPeer, ln)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	remote := shard.NewRemoteDialer(ln.Addr().String(), fn.Dialer(clientPeer))
	remote.SetTimeout(500 * time.Millisecond)
	t.Cleanup(func() { remote.Close() })
	return remote
}

// killReplica partitions replica r of group s on both sides of its link.
func (w *repWorld) killReplica(s, r int) {
	w.net.Partition(repClientPeer(s, r))
	w.net.Partition(repServerPeer(s, r))
}

func (w *repWorld) healReplica(s, r int) {
	w.net.Heal(repClientPeer(s, r))
	w.net.Heal(repServerPeer(s, r))
}

func (w *repWorld) probe(rounds int) {
	for i := 0; i < rounds; i++ {
		w.prober.ProbeOnce(context.Background())
	}
}

// exactQuery requires one discovery to come back complete and slot-exact
// against the full-population oracle — the replicated contract whenever
// at least one replica per group is alive.
func (w *repWorld) exactQuery(qi int) error {
	target := w.ds.Profiles[qi]
	exclude := uint64(qi + 1)
	got, partial, err := w.f.DiscoverSharded(context.Background(), w.pool, target, w.p.k, exclude)
	if err != nil {
		return fmt.Errorf("target %d: %w", qi+1, err)
	}
	if partial {
		return fmt.Errorf("target %d: flagged partial with a live replica in every group", qi+1)
	}
	if cerr := frontend.EqualMatches(got, w.oracle.Discover(target, w.p.k, exclude)); cerr != nil {
		return fmt.Errorf("target %d: %w", qi+1, cerr)
	}
	return nil
}

// partialMasks enumerates every strict non-empty subset of partitions.
func (w *repWorld) partialMasks() []int {
	full := 1<<w.p.partitions - 1
	masks := make([]int, 0, full-1)
	for m := 1; m < full; m++ {
		masks = append(masks, m)
	}
	return masks
}

func (w *repWorld) aliveFn(mask int) func(uint64) bool {
	parts := uint64(w.p.partitions)
	return func(id uint64) bool { return mask&(1<<(id%parts)) != 0 }
}

// checkQuery validates one result under random chaos: complete results
// match the full oracle; partial results (possible only when every
// replica of some group faulted at once) must match some strict
// surviving-partition subset.
func (w *repWorld) checkQuery(target []float64, exclude uint64, got []frontend.Match, partial bool) error {
	if !partial {
		return frontend.EqualMatches(got, w.oracle.Discover(target, w.p.k, exclude))
	}
	for _, mask := range w.partialMasks() {
		if frontend.EqualMatches(got, w.oracle.DiscoverOwned(target, w.p.k, exclude, w.aliveFn(mask))) == nil {
			return nil
		}
	}
	return fmt.Errorf("partial result matches no surviving-partition subset: %v", got)
}

// runReplicaKillPhase kills each replica index fleet-wide in turn and
// requires every discovery to stay complete and oracle-exact, before and
// after the prober demotes the corpses; healing re-admits them.
func runReplicaKillPhase(t *testing.T, w *repWorld) {
	rng := rand.New(rand.NewSource(w.p.seed*211 + 1))
	for r := 0; r < w.p.replicas; r++ {
		for s := range w.groups {
			w.killReplica(s, r)
		}
		failovers0 := counters(w.reg)["replica.failovers"]
		// Pre-demotion: the dead replica is still a read candidate, so
		// failover is what keeps these complete.
		for i := 0; i < 3; i++ {
			if err := w.exactQuery(rng.Intn(w.p.users)); err != nil {
				t.Fatalf("replica %d killed (pre-demotion), query %d: %v", r, i, err)
			}
		}
		if r == 0 {
			// Replica 0 is every group's first read choice, so killing it
			// provably exercises the failover path.
			if d := counters(w.reg)["replica.failovers"] - failovers0; d <= 0 {
				t.Fatalf("replica 0 killed but replica.failovers did not advance (delta %d)", d)
			}
		}
		demotions0 := counters(w.reg)["replica.demotions"]
		w.probe(2)
		if d := counters(w.reg)["replica.demotions"] - demotions0; d != int64(w.p.partitions) {
			t.Fatalf("replica %d killed: %d demotions after 2 probe rounds, want %d",
				r, d, w.p.partitions)
		}
		for i := 0; i < 3; i++ {
			if err := w.exactQuery(rng.Intn(w.p.users)); err != nil {
				t.Fatalf("replica %d killed (post-demotion), query %d: %v", r, i, err)
			}
		}
		// One batch through the same degraded fleet.
		targets := [][]float64{w.ds.Profiles[0], w.ds.Profiles[1], w.ds.Profiles[2]}
		got, partial, err := w.f.DiscoverShardedBatch(context.Background(), w.pool, targets, w.p.k, nil)
		if err != nil || partial {
			t.Fatalf("replica %d killed: batch partial=%v err=%v", r, partial, err)
		}
		for q, target := range targets {
			if cerr := frontend.EqualMatches(got[q], w.oracle.Discover(target, w.p.k, 0)); cerr != nil {
				t.Fatalf("replica %d killed: batch query %d: %v", r, q, cerr)
			}
		}

		readmits0 := counters(w.reg)["replica.readmits"]
		for s := range w.groups {
			w.healReplica(s, r)
		}
		w.probe(1)
		if d := counters(w.reg)["replica.readmits"] - readmits0; d != int64(w.p.partitions) {
			t.Fatalf("replica %d healed: %d readmits after a probe round, want %d",
				r, d, w.p.partitions)
		}
		for s, g := range w.groups {
			st := g.Status()[r]
			if st.Down || !st.Current {
				t.Fatalf("group %d replica %d after heal+probe: %+v, want current", s, r, st)
			}
		}
		if err := w.exactQuery(rng.Intn(w.p.users)); err != nil {
			t.Fatalf("replica %d healed: %v", r, err)
		}
	}
}

// runReplicaChaosPhase drives concurrent discoveries under the seeded
// random fault schedule across every replica link.
func runReplicaChaosPhase(t *testing.T, w *repWorld) {
	w.net.SetEnabled(true)
	defer w.net.SetEnabled(false)

	const workers, queriesPer = 3, 6
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	completed := make([]int, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(w.p.seed*300 + int64(g)))
			for i := 0; i < queriesPer; i++ {
				qi := rng.Intn(w.p.users)
				target := w.ds.Profiles[qi]
				exclude := uint64(qi + 1)
				got, partial, err := w.f.DiscoverSharded(ctx, w.pool, target, w.p.k, exclude)
				if err != nil {
					if !isTransportFault(err) {
						errs <- fmt.Errorf("worker %d query %d: non-transport failure %T: %w", g, i, err, err)
						return
					}
					continue
				}
				completed[g]++
				if cerr := w.checkQuery(target, exclude, got, partial); cerr != nil {
					errs <- fmt.Errorf("worker %d query %d (target %d, partial=%v): %w", g, i, qi+1, partial, cerr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := 0
	for _, c := range completed {
		total += c
	}
	t.Logf("replica chaos phase: %d/%d requests completed and verified", total, workers*queriesPer)
	if total == 0 {
		t.Fatal("no request completed under faults; the plan is too hostile to verify anything")
	}
}

// runGroupLossPhase checks the degradation ladder: one whole group lost
// is a flagged partial over the survivors, everything lost is an error,
// healing restores exact completeness.
func runGroupLossPhase(t *testing.T, w *repWorld) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(w.p.seed*400 + 9))
	victim := int(w.p.seed) % w.p.partitions

	for r := 0; r < w.p.replicas; r++ {
		w.killReplica(victim, r)
	}
	w.probe(2)
	alive := w.aliveFn((1<<w.p.partitions - 1) &^ (1 << victim))
	for i := 0; i < 3; i++ {
		qi := rng.Intn(w.p.users)
		target := w.ds.Profiles[qi]
		got, partial, err := w.f.DiscoverSharded(ctx, w.pool, target, w.p.k, 0)
		if err != nil {
			t.Fatalf("group %d lost, query %d: %v", victim, i, err)
		}
		if !partial {
			t.Fatalf("group %d lost but result not flagged partial", victim)
		}
		if cerr := frontend.EqualMatches(got, w.oracle.DiscoverOwned(target, w.p.k, 0, alive)); cerr != nil {
			t.Fatalf("group %d lost, query %d: %v", victim, i, cerr)
		}
	}

	for s := 0; s < w.p.partitions; s++ {
		for r := 0; r < w.p.replicas; r++ {
			w.killReplica(s, r)
		}
	}
	if _, _, err := w.f.DiscoverSharded(ctx, w.pool, w.ds.Profiles[0], w.p.k, 0); err == nil {
		t.Fatal("every replica of every group killed yet discovery succeeded")
	} else if !isTransportFault(err) {
		t.Fatalf("all-replicas-down error is %T (%v), want a transport fault", err, err)
	}

	for s := 0; s < w.p.partitions; s++ {
		for r := 0; r < w.p.replicas; r++ {
			w.healReplica(s, r)
		}
	}
	w.probe(1)
	if err := w.exactQuery(1); err != nil {
		t.Fatalf("after healing the fleet: %v", err)
	}
}

// runReplicaConvergencePhase re-validates the static world at the end:
// faults off, fleet healed, complete oracle-exact answers.
func runReplicaConvergencePhase(t *testing.T, w *repWorld) {
	w.probe(1)
	rng := rand.New(rand.NewSource(w.p.seed*7 + 2))
	for i := 0; i < 5; i++ {
		if err := w.exactQuery(rng.Intn(w.p.users)); err != nil {
			t.Fatalf("convergence query %d: %v", i, err)
		}
	}
	if lag := w.reg.Snapshot().Gauges["replica.lag"]; lag != 0 {
		t.Fatalf("replica.lag = %d at convergence, want 0", lag)
	}
}

// ---- dynamic replicated world ---------------------------------------

func repDynClientPeer(s, r int) string { return fmt.Sprintf("dynrep%d-%d", s, r) }
func repDynServerPeer(s, r int) string { return fmt.Sprintf("srv-dynrep%d-%d", s, r) }

// repDynWorld is one seeded replicated dynamic deployment. Unlike the
// base dynWorld there is no "uncertain membership": scripted kills never
// fail an operation while a sibling replica is alive, so every op must
// succeed and membership stays exact throughout.
type repDynWorld struct {
	t        *testing.T
	p        repParams
	net      *faultnet.Network
	f        *frontend.Frontend
	ds       *dataset.Dataset
	shards   []frontend.DynShard
	groups   []*shard.ReplicaGroup
	nodes    []frontend.DynNode
	prober   *shard.Prober
	repairer *shard.Repairer
	reg      *obs.Registry
	owner    func(uint64) int

	profiles map[uint64][]float64
	live     map[uint64]bool
	deleted  map[uint64]bool
	nextID   uint64
}

func newRepDynWorld(t *testing.T, p repParams) *repDynWorld {
	t.Helper()
	fn := faultnet.New(p.plan)
	fn.SetEnabled(false)

	users := 50 + int(p.seed%3)*10
	f, err := frontend.New(frontend.Config{
		LSH:        lsh.Params{Dim: 64, Tables: 5, Atoms: 2, Width: 0.8, Seed: p.seed + 2},
		LoadFactor: 0.6, // headroom: churn inserts beyond the initial set
		ProbeRange: 4,
		MaxLoop:    300,
		MaxRehash:  3,
		Seed:       p.seed + 2,
		KeySeed:    fmt.Sprintf("sim-dynrep-%d", p.seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Config{
		Users: users + 200, Dim: 64, Topics: 8, TopicsPerUser: 2,
		ActiveWords: 16, Noise: 0.02, Seed: p.seed + 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]frontend.Upload, users)
	for i := 0; i < users; i++ {
		uploads[i] = frontend.Upload{ID: uint64(i + 1), Profile: ds.Profiles[i], Meta: f.ComputeMeta(ds.Profiles[i])}
	}
	built, err := f.BuildShardedDynamicIndex(uploads, p.partitions, nil)
	if err != nil {
		t.Fatalf("BuildShardedDynamicIndex: %v", err)
	}

	w := &repDynWorld{
		t: t, p: p, net: fn, f: f, ds: ds,
		shards:   built,
		reg:      obs.NewRegistry(),
		owner:    func(id uint64) int { return int(id % uint64(p.partitions)) },
		profiles: make(map[uint64][]float64),
		live:     make(map[uint64]bool),
		deleted:  make(map[uint64]bool),
		nextID:   uint64(users + 1),
	}
	for i := 0; i < users; i++ {
		id := uint64(i + 1)
		w.profiles[id] = ds.Profiles[i]
		w.live[id] = true
	}

	w.nodes = make([]frontend.DynNode, p.partitions)
	for s := 0; s < p.partitions; s++ {
		members := make([]shard.ReplicaNode, p.replicas)
		for r := 0; r < p.replicas; r++ {
			members[r] = newRepServer(t, fn, repDynServerPeer(s, r), repDynClientPeer(s, r))
		}
		g, err := shard.NewReplicaGroup(s, shard.GroupConfig{}, members...)
		if err != nil {
			t.Fatal(err)
		}
		g.SetRegistry(w.reg)
		if err := g.InstallDynIndex(built[s].Index); err != nil {
			t.Fatalf("InstallDynIndex(%d): %v", s, err)
		}
		if err := g.PutProfiles(built[s].EncProfiles); err != nil {
			t.Fatalf("PutProfiles(%d): %v", s, err)
		}
		w.groups = append(w.groups, g)
		w.nodes[s] = g
	}
	w.prober = shard.NewProber(shard.ProberConfig{
		Timeout: 200 * time.Millisecond, DemoteAfter: 2, ReadmitAfter: 1,
	}, w.groups...)
	repair, err := frontend.NewReplicaRepair(w.shards, 16)
	if err != nil {
		t.Fatal(err)
	}
	w.repairer = shard.NewRepairer(shard.RepairerConfig{},
		func(g int, src, dst shard.ReplicaNode) error { return repair(g, src, dst) },
		w.groups...)
	return w
}

func (w *repDynWorld) killReplica(s, r int) {
	w.net.Partition(repDynClientPeer(s, r))
	w.net.Partition(repDynServerPeer(s, r))
}

func (w *repDynWorld) healReplica(s, r int) {
	w.net.Heal(repDynClientPeer(s, r))
	w.net.Heal(repDynServerPeer(s, r))
}

func (w *repDynWorld) probe(rounds int) {
	for i := 0; i < rounds; i++ {
		w.prober.ProbeOnce(context.Background())
	}
}

func (w *repDynWorld) bigK() int { return len(w.profiles) + 32 }

// checkSearch requires an exact dynamic result: complete (never partial
// while a replica per group lives), no ghosts, exact distances, sorted,
// and — when wantID is live — reachable.
func (w *repDynWorld) checkSearch(target []float64, got []frontend.Match, partial bool, wantID uint64) error {
	if partial {
		return fmt.Errorf("partial result with a live replica in every group")
	}
	for i, m := range got {
		prof, known := w.profiles[m.ID]
		if !known {
			return fmt.Errorf("match %d: id %d was never inserted (cross-query leak?)", i, m.ID)
		}
		if w.deleted[m.ID] {
			return fmt.Errorf("match %d: id %d was deleted yet resurfaced", i, m.ID)
		}
		if want := vec.Distance(target, prof); m.Distance != want {
			return fmt.Errorf("match %d: id %d distance %v, want exactly %v", i, m.ID, m.Distance, want)
		}
		if i > 0 && got[i-1].Distance > m.Distance {
			return fmt.Errorf("matches not sorted at %d", i)
		}
	}
	if wantID != 0 && w.live[wantID] {
		for _, m := range got {
			if m.ID == wantID {
				return nil
			}
		}
		return fmt.Errorf("live user %d unreachable via its own profile", wantID)
	}
	return nil
}

// churn runs n mixed operations through the replica groups. Every
// operation must succeed exactly — kills are absorbed by siblings.
func (w *repDynWorld) churn(rng *rand.Rand, n int) {
	w.t.Helper()
	for op := 0; op < n; op++ {
		switch r := rng.Intn(10); {
		case r < 4:
			id := w.nextID
			w.nextID++
			profile := w.ds.Profiles[int(id)%len(w.ds.Profiles)]
			if err := w.f.DynInsertSharded(w.shards, w.nodes, w.owner, id, profile); err != nil {
				w.t.Fatalf("churn op %d: insert %d: %v", op, id, err)
			}
			w.profiles[id] = profile
			w.live[id] = true
		case r < 6:
			id := w.pickLive(rng)
			if id == 0 {
				continue
			}
			if err := w.f.DynDeleteSharded(w.shards, w.nodes, w.owner, id, w.profiles[id]); err != nil {
				w.t.Fatalf("churn op %d: delete %d: %v", op, id, err)
			}
			delete(w.live, id)
			w.deleted[id] = true
		default:
			var wantID uint64
			var target []float64
			if id := w.pickLive(rng); id != 0 && rng.Intn(2) == 0 {
				wantID, target = id, w.profiles[id]
			} else {
				target = w.ds.Profiles[rng.Intn(len(w.ds.Profiles))]
			}
			got, partial, err := w.f.DynSearchSharded(w.shards, w.nodes, target, w.bigK(), 0)
			if err != nil {
				w.t.Fatalf("churn op %d: search: %v", op, err)
			}
			if cerr := w.checkSearch(target, got, partial, wantID); cerr != nil {
				w.t.Fatalf("churn op %d (seed %d): %v", op, w.p.seed, cerr)
			}
		}
	}
}

// insertOwned inserts one fresh user owned by partition s, guaranteeing
// that group s sees a write (the scripted phases use it to force a dead
// replica into lagging state deterministically).
func (w *repDynWorld) insertOwned(s int) {
	w.t.Helper()
	id := w.nextID
	w.nextID++
	for w.owner(id) != s {
		id = w.nextID
		w.nextID++
	}
	profile := w.ds.Profiles[int(id)%len(w.ds.Profiles)]
	if err := w.f.DynInsertSharded(w.shards, w.nodes, w.owner, id, profile); err != nil {
		w.t.Fatalf("insert %d into group %d: %v", id, s, err)
	}
	w.profiles[id] = profile
	w.live[id] = true
}

func (w *repDynWorld) pickLive(rng *rand.Rand) uint64 {
	if len(w.live) == 0 {
		return 0
	}
	ids := make([]uint64, 0, len(w.live))
	for id := range w.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids[rng.Intn(len(ids))]
}

// verifyAll searches for every live user through the groups: each must be
// reachable via its own profile, with a complete, ghost-free result.
func (w *repDynWorld) verifyAll(stage string) {
	w.t.Helper()
	for id := range w.live {
		target := w.profiles[id]
		got, partial, err := w.f.DynSearchSharded(w.shards, w.nodes, target, w.bigK(), 0)
		if err != nil {
			w.t.Fatalf("%s: search for %d: %v", stage, id, err)
		}
		if cerr := w.checkSearch(target, got, partial, id); cerr != nil {
			w.t.Fatalf("%s: search for %d (seed %d): %v", stage, id, w.p.seed, cerr)
		}
	}
}

// verifyReplica checks ONE replica individually, bypassing the group: a
// forked client searches the replica's own bucket store for every live
// user the partition owns, and the replica's profile store must hold
// exactly the partition's live profile set.
func (w *repDynWorld) verifyReplica(stage string, s, r int, node shard.ReplicaNode) {
	w.t.Helper()
	fork, err := w.shards[s].Client.Fork()
	if err != nil {
		w.t.Fatalf("%s: fork client for shard %d: %v", stage, s, err)
	}
	var wantIDs []uint64
	for id := range w.live {
		if w.owner(id) == s {
			wantIDs = append(wantIDs, id)
		}
	}
	sort.Slice(wantIDs, func(a, b int) bool { return wantIDs[a] < wantIDs[b] })
	for _, id := range wantIDs {
		ids, err := fork.Search(node, w.f.ComputeMeta(w.profiles[id]))
		if err != nil {
			w.t.Fatalf("%s: group %d replica %d: direct search for %d: %v", stage, s, r, id, err)
		}
		found := false
		for _, got := range ids {
			if got == id {
				found = true
			}
			if _, known := w.profiles[got]; !known {
				w.t.Fatalf("%s: group %d replica %d: ghost id %d", stage, s, r, got)
			}
			if w.deleted[got] {
				w.t.Fatalf("%s: group %d replica %d: deleted id %d resurfaced", stage, s, r, got)
			}
		}
		if !found {
			w.t.Fatalf("%s: group %d replica %d: live user %d missing from direct search", stage, s, r, id)
		}
	}
	gotIDs, err := node.ProfileIDs()
	if err != nil {
		w.t.Fatalf("%s: group %d replica %d: profile ids: %v", stage, s, r, err)
	}
	if len(gotIDs) != len(wantIDs) {
		w.t.Fatalf("%s: group %d replica %d: profile store holds %d ids, want %d",
			stage, s, r, len(gotIDs), len(wantIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			w.t.Fatalf("%s: group %d replica %d: profile id[%d] = %d, want %d",
				stage, s, r, i, gotIDs[i], wantIDs[i])
		}
	}
}

// verifyEveryReplica runs verifyReplica across the whole fleet.
func (w *repDynWorld) verifyEveryReplica(stage string) {
	w.t.Helper()
	for s, g := range w.groups {
		for r := 0; r < g.Len(); r++ {
			w.verifyReplica(stage, s, r, g.Replica(r))
		}
	}
}

// runReplicatedChurnPhase is the dynamic heart of the suite: kills land
// MID-churn, the repairer re-syncs the victims, and then the OTHER
// replica dies — at which point only a correct repair keeps the answers
// exact. Ends by verifying every replica individually and migrating a
// brand-new replica in under concurrent churn.
func runReplicatedChurnPhase(t *testing.T, p repParams) {
	w := newRepDynWorld(t, p)
	rng := rand.New(rand.NewSource(p.seed*77 + 5))
	ctx := context.Background()

	// Fault-free warmup.
	w.churn(rng, 6)
	w.verifyAll("warmup")

	// Kill replica 0 of every group, interleaved with live churn ops so
	// the kills land mid-stream. One guaranteed insert per group makes
	// every dead replica miss a write — it MUST come back lagging.
	for s := range w.groups {
		w.killReplica(s, 0)
		w.churn(rng, 2)
		w.insertOwned(s)
	}
	w.probe(2)
	for s, g := range w.groups {
		st := g.Status()[0]
		if !st.Down || st.Current {
			t.Fatalf("group %d replica 0 after kill+probes: %+v, want down and not current", s, st)
		}
	}
	w.churn(rng, 8)
	w.verifyAll("replica 0 down")

	// Heal and repair: the victims re-join lagging (their server version
	// is behind the group's) and the anti-entropy round re-syncs them.
	for s := range w.groups {
		w.healReplica(s, 0)
	}
	w.probe(1)
	for s, g := range w.groups {
		st := g.Status()[0]
		if st.Down || st.Current {
			t.Fatalf("group %d replica 0 after heal+probe: %+v, want readmitted but lagging", s, st)
		}
	}
	repairs0 := counters(w.reg)["replica.repairs"]
	if repaired := w.repairer.RepairOnce(ctx); repaired != len(w.groups) {
		t.Fatalf("RepairOnce repaired %d replicas, want %d", repaired, len(w.groups))
	}
	if d := counters(w.reg)["replica.repairs"] - repairs0; d != int64(len(w.groups)) {
		t.Fatalf("replica.repairs advanced by %d, want %d", d, len(w.groups))
	}
	for s, g := range w.groups {
		if st := g.Status()[0]; !st.Current {
			t.Fatalf("group %d replica 0 after repair: %+v, want current", s, st)
		}
	}

	// Now kill every OTHER replica everywhere: reads can only land on the
	// repaired replica 0. Exact answers here are the differential proof
	// that the repair restored the complete logical state.
	for s := range w.groups {
		for r := 1; r < w.p.replicas; r++ {
			w.killReplica(s, r)
		}
		w.churn(rng, 1)
	}
	w.probe(2)
	w.churn(rng, 6)
	w.verifyAll("repaired replica serving alone")

	// Heal, repair, verify the whole fleet converged — every replica
	// individually answers the full live set.
	for s := range w.groups {
		for r := 1; r < w.p.replicas; r++ {
			w.healReplica(s, r)
		}
	}
	w.probe(1)
	w.repairer.RepairOnce(ctx)
	for s, g := range w.groups {
		for r, st := range g.Status() {
			if !st.Current {
				t.Fatalf("group %d replica %d not current at convergence: %+v", s, r, st)
			}
		}
	}
	w.verifyEveryReplica("post-repair convergence")
	if lag := w.reg.Snapshot().Gauges["replica.lag"]; lag != 0 {
		t.Fatalf("replica.lag = %d after repairs, want 0", lag)
	}

	runRebalancePhase(t, w, rng)
}

// runRebalancePhase joins a brand-new empty replica to group 0 and
// migrates the partition's state onto it online, while churn keeps
// writing through the group — then verifies the joiner individually.
func runRebalancePhase(t *testing.T, w *repDynWorld, rng *rand.Rand) {
	t.Helper()
	ctx := context.Background()
	joinIdx := w.groups[0].Len()
	joiner := newRepServer(w.t, w.net, repDynServerPeer(0, joinIdx), repDynClientPeer(0, joinIdx))
	j, err := w.groups[0].AddReplica(joiner)
	if err != nil {
		t.Fatal(err)
	}

	mig, err := frontend.NewReplicaMigration(w.shards)
	if err != nil {
		t.Fatal(err)
	}
	width := mig.Width(0)
	if width == 0 {
		t.Fatal("migration width is 0")
	}
	rb := &shard.Rebalancer{
		Prepare: func(g int, src, dst shard.ReplicaNode) error { return mig.Prepare(g, src, dst) },
		CopyRange: func(g int, src, dst shard.ReplicaNode, lo, hi uint64) error {
			return mig.CopyRange(g, src, dst, lo, hi)
		},
		Finish: func(g int, src, dst shard.ReplicaNode) error { return mig.Finish(g, src, dst) },
		Width:  width,
		Chunk:  width/4 + 1,
	}

	// Concurrent churn on the joining group while the migration copies.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 3; i++ {
			id := w.nextID
			w.nextID++
			for w.owner(id) != 0 {
				id = w.nextID
				w.nextID++
			}
			profile := w.ds.Profiles[int(id)%len(w.ds.Profiles)]
			if err := w.f.DynInsertSharded(w.shards, w.nodes, w.owner, id, profile); err != nil {
				done <- fmt.Errorf("concurrent insert %d: %w", id, err)
				return
			}
			w.profiles[id] = profile
			w.live[id] = true
		}
		done <- nil
	}()
	migErr := rb.Migrate(ctx, w.groups[0], j)
	if cerr := <-done; cerr != nil {
		t.Fatalf("churn during migration: %v", cerr)
	}
	if migErr != nil {
		t.Fatalf("Migrate: %v", migErr)
	}
	if st := w.groups[0].Status()[j]; !st.Current {
		t.Fatalf("joiner not current after migration: %+v", st)
	}
	w.verifyAll("post-migration")
	w.verifyReplica("joiner", 0, j, w.groups[0].Replica(j))
}
