// Model-based property test for standing subscriptions: random
// interleavings of register / unsubscribe / insert / delete are applied
// to an in-process sharded dynamic deployment and, in lockstep, to the
// plaintext SubOracle. After every operation the emitted notifications
// must equal the oracle's predicted top-k delta slot-exactly, and at the
// end of every interleaving each live subscription's standing result must
// equal the oracle's — the convergence property that makes notifications
// trustworthy as a materialized view of the index.
package pisd_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pisd/internal/cloud"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/lsh"
	"pisd/internal/shard"
	"pisd/internal/subs"
)

// propSubWorld is one seeded in-process deployment for the property test:
// two local shards, the serving path with subscriptions attached, and the
// oracle mirror.
type propSubWorld struct {
	t       *testing.T
	f       *frontend.Frontend
	ds      *dataset.Dataset
	serving *frontend.DynServing
	oracle  *frontend.SubOracle

	got      []subs.Notification
	profiles map[uint64][]float64
	live     map[uint64]bool
	subbed   map[uint64]bool
	nextID   uint64
}

func newPropSubWorld(t *testing.T, seed int64) *propSubWorld {
	t.Helper()
	const users, shards = 40, 2
	f, err := frontend.New(frontend.Config{
		LSH:        lsh.Params{Dim: 32, Tables: 5, Atoms: 2, Width: 0.8, Seed: seed},
		LoadFactor: 0.5,
		ProbeRange: 4,
		MaxLoop:    300,
		MaxRehash:  3,
		Seed:       seed,
		KeySeed:    fmt.Sprintf("sub-prop-%d", seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Config{
		Users: users + 300, Dim: 32, Topics: 6, TopicsPerUser: 2,
		ActiveWords: 10, Noise: 0.02, Seed: seed + 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]frontend.Upload, users)
	for i := 0; i < users; i++ {
		uploads[i] = frontend.Upload{ID: uint64(i + 1), Profile: ds.Profiles[i], Meta: f.ComputeMeta(ds.Profiles[i])}
	}
	built, err := f.BuildShardedDynamicIndex(uploads, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]frontend.DynNode, shards)
	for s := range built {
		cs := cloud.New()
		cs.SetDynIndex(built[s].Index)
		cs.PutProfiles(built[s].EncProfiles)
		nodes[s] = shard.NewLocal(cs)
	}
	serving, err := f.NewDynServing(built, nodes, nil, frontend.ServingConfig{CacheEntries: 128})
	if err != nil {
		t.Fatal(err)
	}
	w := &propSubWorld{
		t: t, f: f, ds: ds, serving: serving,
		profiles: make(map[uint64][]float64),
		live:     make(map[uint64]bool),
		subbed:   make(map[uint64]bool),
		nextID:   uint64(users + 1),
	}
	serving.AttachSubscriptions(func(n subs.Notification) { w.got = append(w.got, n) })
	oracle, err := f.NewSubOracle(built, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.oracle = oracle
	for i := 0; i < users; i++ {
		id := uint64(i + 1)
		w.profiles[id] = ds.Profiles[i]
		w.live[id] = true
		oracle.PutProfile(id, ds.Profiles[i])
	}
	return w
}

func (w *propSubWorld) drain() []subs.Notification {
	out := w.got
	w.got = nil
	return out
}

func (w *propSubWorld) pickLive(rng *rand.Rand) uint64 {
	if len(w.live) == 0 {
		return 0
	}
	ids := make([]uint64, 0, len(w.live))
	for id := range w.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids[rng.Intn(len(ids))]
}

func (w *propSubWorld) pickSubscribed(rng *rand.Rand) uint64 {
	if len(w.subbed) == 0 {
		return 0
	}
	ids := make([]uint64, 0, len(w.subbed))
	for id := range w.subbed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids[rng.Intn(len(ids))]
}

func (w *propSubWorld) register(op int, subID uint64, k int) {
	w.t.Helper()
	profile := w.profiles[subID]
	matches, partial, err := w.serving.Search(profile, len(w.profiles)+16, 0)
	if err != nil || partial {
		w.t.Fatalf("op %d: seed search for %d: partial=%v err=%v", op, subID, partial, err)
	}
	seedIDs := make([]uint64, len(matches))
	for i, m := range matches {
		seedIDs[i] = m.ID
	}
	gotE, err := w.serving.Subscribe(subID, profile, k)
	if err != nil {
		w.t.Fatalf("op %d: subscribe %d: %v", op, subID, err)
	}
	wantE, err := w.oracle.Register(subID, k, profile, seedIDs)
	if err != nil {
		w.t.Fatalf("op %d: oracle register %d: %v", op, subID, err)
	}
	if err := diffEntries(gotE, wantE); err != nil {
		w.t.Fatalf("op %d: sub %d initial standing result: %v", op, subID, err)
	}
	if n := w.drain(); len(n) != 0 {
		w.t.Fatalf("op %d: registration of %d emitted %d notifications", op, subID, len(n))
	}
	w.subbed[subID] = true
}

// TestSubscriptionTopKProperty drives random operation interleavings and
// checks per-op notification equality plus final standing-result
// convergence against the oracle, across several seeds.
func TestSubscriptionTopKProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := newPropSubWorld(t, seed)
			rng := rand.New(rand.NewSource(seed*577 + 11))
			const ops = 70
			k := 2 + rng.Intn(4)
			for op := 0; op < ops; op++ {
				switch r := rng.Intn(20); {
				case r < 3: // register a live, unsubscribed user
					if id := w.pickLive(rng); id != 0 && !w.subbed[id] {
						w.register(op, id, k)
					}
				case r < 5: // unsubscribe (and later maybe re-register)
					if id := w.pickSubscribed(rng); id != 0 {
						if got, want := w.serving.Unsubscribe(id), w.oracle.Unsubscribe(id); got != want {
							t.Fatalf("op %d: unsubscribe %d: serving=%v oracle=%v", op, id, got, want)
						}
						delete(w.subbed, id)
					}
				case r < 12: // insert: fresh profile, or a subscriber duplicate
					id := w.nextID
					w.nextID++
					profile := w.ds.Profiles[int(id)%len(w.ds.Profiles)]
					if sub := w.pickSubscribed(rng); sub != 0 && rng.Intn(4) == 0 {
						profile = w.profiles[sub] // guaranteed ref intersection
					}
					w.oracle.PutProfile(id, profile)
					w.profiles[id] = profile
					if err := w.serving.Insert(id, profile); err != nil {
						t.Fatalf("op %d: insert %d: %v", op, id, err)
					}
					w.live[id] = true
					want, err := w.oracle.Insert(id, profile)
					if err != nil {
						t.Fatalf("op %d: oracle insert %d: %v", op, id, err)
					}
					if err := diffNotifications(w.drain(), want); err != nil {
						t.Fatalf("op %d: insert %d: %v", op, id, err)
					}
				default: // delete
					id := w.pickLive(rng)
					if id == 0 {
						continue
					}
					if err := w.serving.Delete(id, w.profiles[id]); err != nil {
						t.Fatalf("op %d: delete %d: %v", op, id, err)
					}
					delete(w.live, id)
					want := w.oracle.Delete(id)
					if err := diffNotifications(w.drain(), want); err != nil {
						t.Fatalf("op %d: delete %d: %v", op, id, err)
					}
				}
			}
			// Convergence: every live subscription's standing result equals
			// the oracle's slot-exactly, and a full re-score is a no-op.
			if w.serving.Subscriptions().Len() != len(w.subbed) {
				t.Fatalf("%d live subscriptions, want %d", w.serving.Subscriptions().Len(), len(w.subbed))
			}
			for id := range w.subbed {
				got, ok := w.serving.Subscriptions().TopK(id)
				want, wok := w.oracle.TopK(id)
				if !ok || !wok {
					t.Fatalf("sub %d: serving ok=%v oracle ok=%v", id, ok, wok)
				}
				if err := diffEntries(got, want); err != nil {
					t.Fatalf("sub %d final standing result: %v", id, err)
				}
			}
			if len(w.subbed) > 0 {
				changed, err := w.serving.RescoreSubscriptions()
				if err != nil {
					t.Fatalf("rescore: %v", err)
				}
				if changed != 0 {
					t.Fatalf("rescore corrected %d candidates on a consistent deployment, want 0", changed)
				}
			}
		})
	}
}
