package pisd_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/dataset"
	"pisd/internal/faultnet"
	"pisd/internal/frontend"
	"pisd/internal/lsh"
	"pisd/internal/shard"
	"pisd/internal/transport"
	"pisd/internal/vec"
)

// simSeeds returns the seed set the simulation runs, from the
// PISD_SIM_SEEDS environment variable ("1,2,3") or the default fixed set
// CI uses.
func simSeeds(t *testing.T) []int64 {
	env := os.Getenv("PISD_SIM_SEEDS")
	if env == "" {
		return []int64{1, 2, 3}
	}
	var seeds []int64
	for _, tok := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			t.Fatalf("PISD_SIM_SEEDS: bad seed %q: %v", tok, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// recordFailingSeed appends seed to the artifact file named by
// PISD_SIM_FAILURE_FILE (CI uploads it) and logs the repro command.
func recordFailingSeed(t *testing.T, seed int64) {
	t.Helper()
	recordFailingSeedFor(t, seed, "TestSimulationE2E")
}

// recordFailingSeedFor is recordFailingSeed with the repro command naming
// the suite that failed (the replication suite shares the artifact file).
func recordFailingSeedFor(t *testing.T, seed int64, test string) {
	t.Helper()
	t.Logf("REPRODUCE: PISD_SIM_SEEDS=%d go test -race -run '%s' .", seed, test)
	path := os.Getenv("PISD_SIM_FAILURE_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("failing-seed artifact: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%d\n", seed)
}

// netListen binds an ephemeral loopback port for a simulated shard server.
func netListen(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}

// simParams is everything one simulated world derives from its seed:
// population size, shard count, discovery depth and the fault schedule.
type simParams struct {
	seed   int64
	users  int
	shards int
	k      int
	plan   faultnet.Plan
}

func deriveSimParams(seed int64) simParams {
	rng := rand.New(rand.NewSource(seed))
	return simParams{
		seed:   seed,
		users:  120 + rng.Intn(80),
		shards: 2 + rng.Intn(3),
		k:      4 + rng.Intn(5),
		plan: faultnet.Plan{
			Seed:           seed,
			DialFailProb:   0.02,
			ReadFaultBytes: 8 << 10,
			ReadLatency:    2 * time.Millisecond,
			SlowReadBytes:  48,
			StallDelay:     250 * time.Millisecond,
			DropProb:       0.010 + 0.020*rng.Float64(),
			TruncateProb:   0.005 + 0.010*rng.Float64(),
			ResetProb:      0.005 + 0.010*rng.Float64(),
		},
	}
}

// isTransportFault reports whether err is an acceptable failure under
// injected faults: a connection-level fault (including wrapped injected
// dial/read/write errors and per-attempt timeouts) or a typed remote
// application error. Anything else — a decode of garbage surfacing as a
// different error type, a panic converted to a string — fails the run.
func isTransportFault(err error) bool {
	if transport.IsConnError(err) {
		return true
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return true
	}
	return errors.Is(err, faultnet.ErrInjected)
}

// staticWorld is one seeded static deployment: a sharded secure index
// served by real transport servers over TCP, dialed through the faultnet
// harness (one client peer and one server peer per shard), with the
// plaintext oracle replaying the build.
type staticWorld struct {
	t      *testing.T
	p      simParams
	net    *faultnet.Network
	f      *frontend.Frontend
	ds     *dataset.Dataset
	oracle *frontend.Oracle
	pool   *shard.Pool
}

func clientPeer(s int) string { return fmt.Sprintf("shard%d", s) }
func serverPeer(s int) string { return fmt.Sprintf("srv-shard%d", s) }

// partitionShard cuts shard s off on both sides of its link.
func (w *staticWorld) partitionShard(s int) {
	w.net.Partition(clientPeer(s))
	w.net.Partition(serverPeer(s))
}

func (w *staticWorld) healShard(s int) {
	w.net.Heal(clientPeer(s))
	w.net.Heal(serverPeer(s))
}

// newStaticWorld builds the full deployment with faults disabled (setup
// must not flake), leaving the network armed for the phases to enable.
func newStaticWorld(t *testing.T, p simParams) *staticWorld {
	t.Helper()
	fn := faultnet.New(p.plan)
	fn.SetEnabled(false)

	f, err := frontend.New(frontend.Config{
		LSH:        lsh.Params{Dim: 64, Tables: 6, Atoms: 2, Width: 0.8, Seed: p.seed},
		LoadFactor: 0.8,
		ProbeRange: 5,
		MaxLoop:    300,
		MaxRehash:  3,
		Seed:       p.seed,
		KeySeed:    fmt.Sprintf("sim-static-%d", p.seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Config{
		Users: p.users, Dim: 64, Topics: 10, TopicsPerUser: 2,
		ActiveWords: 16, Noise: 0.02, Seed: p.seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]frontend.Upload, p.users)
	for i, prof := range ds.Profiles {
		uploads[i] = frontend.Upload{ID: uint64(i + 1), Profile: prof, Meta: f.ComputeMeta(prof)}
	}
	built, err := f.BuildShardedIndex(uploads, p.shards, nil)
	if err != nil {
		t.Fatalf("BuildShardedIndex: %v", err)
	}
	oracle, err := f.BuildOracle(uploads)
	if err != nil {
		t.Fatalf("BuildOracle: %v", err)
	}

	nodes := make([]shard.Node, p.shards)
	for s := 0; s < p.shards; s++ {
		srv := transport.NewServer(cloud.New())
		ln, err := netListen(t)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(fn.WrapListener(serverPeer(s), ln)); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		remote := shard.NewRemoteDialer(ln.Addr().String(), fn.Dialer(clientPeer(s)))
		t.Cleanup(func() { remote.Close() })
		nodes[s] = remote
	}
	pool, err := shard.NewPool(shard.Config{Timeout: 120 * time.Millisecond, Retries: 3}, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	for s, sh := range built {
		if err := pool.InstallShard(s, sh.Index, sh.EncProfiles); err != nil {
			t.Fatalf("InstallShard(%d): %v", s, err)
		}
	}
	return &staticWorld{t: t, p: p, net: fn, f: f, ds: ds, oracle: oracle, pool: pool}
}

// checkQuery validates one discovery result against the oracle. A
// complete result must match the full-population reference exactly; a
// partial result must match the reference restricted to SOME strict,
// non-empty subset of shards — anything else means buckets or profiles
// were corrupted or leaked across queries.
func (w *staticWorld) checkQuery(target []float64, k int, exclude uint64, got []frontend.Match, partial bool) error {
	if !partial {
		return frontend.EqualMatches(got, w.oracle.Discover(target, k, exclude))
	}
	for _, mask := range w.partialMasks() {
		want := w.oracle.DiscoverOwned(target, k, exclude, w.aliveFn(mask))
		if frontend.EqualMatches(got, want) == nil {
			return nil
		}
	}
	return fmt.Errorf("partial result matches no healthy-shard subset: %v", got)
}

// checkBatch validates a batched result: complete batches match the full
// reference per query; a partial batch must be consistent with ONE common
// healthy-shard subset across all of its queries, because the pool skips
// a failed shard for the whole batch.
func (w *staticWorld) checkBatch(targets [][]float64, k int, excludes []uint64, got [][]frontend.Match, partial bool) error {
	if len(got) != len(targets) {
		return fmt.Errorf("batch of %d answered with %d results", len(targets), len(got))
	}
	exclude := func(q int) uint64 {
		if excludes == nil {
			return 0
		}
		return excludes[q]
	}
	if !partial {
		for q, target := range targets {
			if err := frontend.EqualMatches(got[q], w.oracle.Discover(target, k, exclude(q))); err != nil {
				return fmt.Errorf("batch query %d: %w", q, err)
			}
		}
		return nil
	}
masks:
	for _, mask := range w.partialMasks() {
		for q, target := range targets {
			want := w.oracle.DiscoverOwned(target, k, exclude(q), w.aliveFn(mask))
			if frontend.EqualMatches(got[q], want) != nil {
				continue masks
			}
		}
		return nil
	}
	return fmt.Errorf("partial batch matches no single healthy-shard subset")
}

// partialMasks enumerates every strict non-empty subset of shards as an
// alive bitmask.
func (w *staticWorld) partialMasks() []int {
	full := 1<<w.p.shards - 1
	masks := make([]int, 0, full-1)
	for m := 1; m < full; m++ {
		masks = append(masks, m)
	}
	return masks
}

// aliveFn maps an alive bitmask to the per-user filter the oracle wants,
// under the default id-mod-shards owner.
func (w *staticWorld) aliveFn(mask int) func(uint64) bool {
	shards := uint64(w.p.shards)
	return func(id uint64) bool { return mask&(1<<(id%shards)) != 0 }
}

// dynWorld is one seeded dynamic deployment: per-shard updatable indexes
// on real transport servers, dialed through the same kind of fault
// harness, with semantic membership tracking instead of a slot-exact
// mirror (dynamic placement depends on live kick rounds).
type dynWorld struct {
	t      *testing.T
	p      simParams
	net    *faultnet.Network
	f      *frontend.Frontend
	ds     *dataset.Dataset
	shards []frontend.DynShard
	nodes  []frontend.DynNode
	owner  func(uint64) int

	// Membership bookkeeping under faults. profiles holds every id ever
	// attempted; certain / uncertain / deleted partition what we know.
	// shaky marks shards where an update failed mid-protocol: a broken
	// kick chain there may legitimately lose users, so reachability is
	// not asserted for that shard's users (subset, distance and ghost
	// invariants still are).
	profiles  map[uint64][]float64
	certain   map[uint64]bool
	uncertain map[uint64]bool
	deleted   map[uint64]bool
	shaky     map[int]bool
	nextID    uint64
}

func dynClientPeer(s int) string { return fmt.Sprintf("dyn%d", s) }
func dynServerPeer(s int) string { return fmt.Sprintf("srv-dyn%d", s) }

func newDynWorld(t *testing.T, p simParams) *dynWorld {
	t.Helper()
	fn := faultnet.New(p.plan)
	fn.SetEnabled(false)

	users := 60 + int(p.seed%3)*10
	f, err := frontend.New(frontend.Config{
		LSH:        lsh.Params{Dim: 64, Tables: 5, Atoms: 2, Width: 0.8, Seed: p.seed + 1},
		LoadFactor: 0.6, // headroom: churn inserts beyond the initial set
		ProbeRange: 4,
		MaxLoop:    300,
		MaxRehash:  3,
		Seed:       p.seed + 1,
		KeySeed:    fmt.Sprintf("sim-dyn-%d", p.seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Config{
		Users: users + 200, Dim: 64, Topics: 8, TopicsPerUser: 2,
		ActiveWords: 16, Noise: 0.02, Seed: p.seed + 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]frontend.Upload, users)
	for i := 0; i < users; i++ {
		uploads[i] = frontend.Upload{ID: uint64(i + 1), Profile: ds.Profiles[i], Meta: f.ComputeMeta(ds.Profiles[i])}
	}
	built, err := f.BuildShardedDynamicIndex(uploads, p.shards, nil)
	if err != nil {
		t.Fatalf("BuildShardedDynamicIndex: %v", err)
	}

	w := &dynWorld{
		t: t, p: p, net: fn, f: f, ds: ds,
		shards:    built,
		owner:     func(id uint64) int { return int(id % uint64(p.shards)) },
		profiles:  make(map[uint64][]float64),
		certain:   make(map[uint64]bool),
		uncertain: make(map[uint64]bool),
		deleted:   make(map[uint64]bool),
		shaky:     make(map[int]bool),
		nextID:    uint64(users + 1),
	}
	for i := 0; i < users; i++ {
		id := uint64(i + 1)
		w.profiles[id] = ds.Profiles[i]
		w.certain[id] = true
	}

	w.nodes = make([]frontend.DynNode, p.shards)
	for s := 0; s < p.shards; s++ {
		srv := transport.NewServer(cloud.New())
		ln, err := netListen(t)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(fn.WrapListener(dynServerPeer(s), ln)); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		remote := shard.NewRemoteDialer(ln.Addr().String(), fn.Dialer(dynClientPeer(s)))
		remote.SetTimeout(500 * time.Millisecond)
		t.Cleanup(func() { remote.Close() })
		if err := remote.InstallDynIndex(built[s].Index); err != nil {
			t.Fatalf("InstallDynIndex(%d): %v", s, err)
		}
		if err := remote.PutProfiles(built[s].EncProfiles); err != nil {
			t.Fatalf("PutProfiles(%d): %v", s, err)
		}
		w.nodes[s] = remote
	}
	return w
}

// bigK is a discovery depth larger than the whole population, so top-k
// truncation never hides a candidate from an invariant check.
func (w *dynWorld) bigK() int { return len(w.profiles) + 32 }

// checkSearch validates one dynamic search result. Invariants that hold
// under any fault mix: no ghost ids (never-inserted or certainly-deleted
// users), exact distances against plaintext profiles, ascending order.
// When the result is complete (non-partial), wantID — if certain and on a
// non-shaky shard — must be present.
func (w *dynWorld) checkSearch(target []float64, got []frontend.Match, partial bool, wantID uint64) error {
	for i, m := range got {
		prof, known := w.profiles[m.ID]
		if !known {
			return fmt.Errorf("match %d: id %d was never inserted (cross-query leak?)", i, m.ID)
		}
		if w.deleted[m.ID] {
			return fmt.Errorf("match %d: id %d was deleted yet resurfaced", i, m.ID)
		}
		if want := vec.Distance(target, prof); m.Distance != want {
			return fmt.Errorf("match %d: id %d distance %v, want exactly %v", i, m.ID, m.Distance, want)
		}
		if i > 0 && got[i-1].Distance > m.Distance {
			return fmt.Errorf("matches not sorted at %d", i)
		}
	}
	if !partial && wantID != 0 && w.certain[wantID] && !w.shaky[w.owner(wantID)] {
		for _, m := range got {
			if m.ID == wantID {
				return nil
			}
		}
		return fmt.Errorf("certain user %d unreachable via its own profile", wantID)
	}
	return nil
}

// markUpdateFailed records the aftermath of a failed insert/delete for
// id: membership is unknown and the owning shard's kick chains may have
// lost users.
func (w *dynWorld) markUpdateFailed(id uint64) {
	w.uncertain[id] = true
	delete(w.certain, id)
	w.shaky[w.owner(id)] = true
}

// pickCertain draws a certainly-live user deterministically from the
// seeded rng (map iteration order is runtime-randomized, so sort first).
// Returns 0 when none exist.
func (w *dynWorld) pickCertain(rng *rand.Rand) uint64 {
	if len(w.certain) == 0 {
		return 0
	}
	ids := make([]uint64, 0, len(w.certain))
	for id := range w.certain {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids[rng.Intn(len(ids))]
}
