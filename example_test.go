package pisd_test

import (
	"fmt"
	"log"

	"pisd"
	"pisd/internal/dataset"
	"pisd/internal/sharing"
	"pisd/internal/surf"
)

// The shortest path from profiles to private recommendations: an
// in-process System wiring the front end and the cloud together.
func ExampleSystem() {
	ds, err := dataset.Generate(dataset.Config{
		Users: 500, Dim: 200, Topics: 10, TopicsPerUser: 2,
		ActiveWords: 25, Noise: 0.02, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := pisd.DefaultSystemConfig(200)
	cfg.Frontend.KeySeed = "example" // deterministic output for the doc test
	sys, err := pisd.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	uploads := make([]pisd.Upload, len(ds.Profiles))
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sys.SF.ComputeMeta(p)}
	}
	if err := sys.AddProfiles(uploads); err != nil {
		log.Fatal(err)
	}
	matches, err := sys.Discover(ds.Profiles[0], 1)
	if err != nil {
		log.Fatal(err)
	}
	// The nearest profile to user 1's own profile is user 1, at distance 0.
	fmt.Printf("top match: user %d, distance %.1f\n", matches[0].ID, matches[0].Distance)
	// Output: top match: user 1, distance 0.0
}

// A user client running the paper's two local tasks, GenProf and
// ComputeLSH, over rendered topic images.
func ExampleUser_upload() {
	// The front end pre-shares the vocabulary and LSH parameters; here a
	// tiny stand-in vocabulary keeps the example fast.
	var sample []pisd.Descriptor
	for i := int64(0); i < 3; i++ {
		im, err := pisd.RenderTopicImage(pisd.Topic(1), i, 96, 96)
		if err != nil {
			log.Fatal(err)
		}
		descs, err := extractDescriptors(im)
		if err != nil {
			log.Fatal(err)
		}
		sample = append(sample, descs...)
	}
	vocab, err := pisd.TrainVocabulary(sample, 16)
	if err != nil {
		log.Fatal(err)
	}
	user, err := pisd.NewUser(7, vocab, pisd.LSHParams{Dim: 16, Tables: 4, Atoms: 2, Width: 0.8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	im, err := pisd.RenderTopicImage(pisd.Topic(1), 99, 96, 96)
	if err != nil {
		log.Fatal(err)
	}
	up, err := user.Upload([]*pisd.Image{im})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user %d: %d-dim profile, %d LSH tables\n", up.ID, len(up.Profile), len(up.Meta))
	// Output: user 7: 16-dim profile, 4 LSH tables
}

// Encrypted image sharing under an attribute policy (Sec. III-E).
func ExampleSharingAuthority() {
	authority := sharing.NewAuthorityFromSeed("doc-example")
	ct, err := authority.Encrypt(sharing.AllOf("family"), []byte("photo bytes"))
	if err != nil {
		log.Fatal(err)
	}
	family := authority.IssueKeys([]sharing.Attribute{"family"})
	pt, err := sharing.Decrypt(family, ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("family reads %d bytes\n", len(pt))
	stranger := authority.IssueKeys([]sharing.Attribute{"coworker"})
	if _, err := sharing.Decrypt(stranger, ct); err != nil {
		fmt.Println("stranger denied")
	}
	// Output:
	// family reads 11 bytes
	// stranger denied
}

// extractDescriptors is the SURF extraction a real client performs inside
// GenProf, exposed here for vocabulary bootstrapping.
func extractDescriptors(im *pisd.Image) ([]pisd.Descriptor, error) {
	return surf.Extract(im, surf.DefaultOptions())
}
