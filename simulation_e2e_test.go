// Differential simulation of the full PISD stack under injected network
// faults, in the deterministic-simulation style: every run is keyed by a
// seed, every fault comes from the seeded faultnet schedule, and every
// result the encrypted pipeline produces is checked against a plaintext
// oracle. A failing seed is printed (and written to the CI artifact file)
// and reproduces the same workload and fault schedule.
//
// Per seed, four phases:
//
//	A. Static discovery under random faults: concurrent workers drive
//	   Discover / DiscoverBatch through a sharded TCP deployment while the
//	   links drop, truncate, reset, slow and stall. Successes must match
//	   the oracle exactly (complete results) or match the oracle over some
//	   healthy-shard subset (partial results); failures must be typed
//	   transport faults.
//	B. Scripted partitions with the random schedule off: partial flags,
//	   all-shards-down errors and post-heal recovery are checked exactly.
//	C. Dynamic churn through remote shards: a fault-free warmup with
//	   exact-membership checks, then insert/delete/search under faults
//	   with semantic invariants (no ghosts, exact distances, reachability
//	   on healthy shards).
//	D. Final convergence: faults off, partitions healed — the static
//	   world must answer complete, oracle-exact results again, proving no
//	   lingering stream corruption survived the chaos.
package pisd_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pisd/internal/frontend"
)

func TestSimulationE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	for _, seed := range simSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Cleanup(func() {
				if t.Failed() {
					recordFailingSeed(t, seed)
				}
			})
			p := deriveSimParams(seed)
			t.Logf("seed %d: users=%d shards=%d k=%d plan=%+v", seed, p.users, p.shards, p.k, p.plan)

			w := newStaticWorld(t, p)
			runStaticFaultPhase(t, w)
			runPartitionPhase(t, w)
			runDynamicChurnPhase(t, p)
			runConvergencePhase(t, w)
		})
	}
}

// runStaticFaultPhase drives concurrent single and batched discoveries
// through the faulted links. Each worker validates its own results, so a
// response routed to the wrong caller (cross-query leakage) shows up as
// an oracle mismatch in the worker that received it.
func runStaticFaultPhase(t *testing.T, w *staticWorld) {
	w.net.SetEnabled(true)
	defer w.net.SetEnabled(false)

	const workers, queriesPer = 3, 8
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	completed := make([]int, workers+1)

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(w.p.seed*100 + int64(g)))
			for i := 0; i < queriesPer; i++ {
				qi := rng.Intn(w.p.users)
				target := w.ds.Profiles[qi]
				var exclude uint64
				if rng.Intn(2) == 0 {
					exclude = uint64(qi + 1)
				}
				got, partial, err := w.f.DiscoverSharded(ctx, w.pool, target, w.p.k, exclude)
				if err != nil {
					if !isTransportFault(err) {
						errs <- fmt.Errorf("worker %d query %d: non-transport failure %T: %w", g, i, err, err)
						return
					}
					continue
				}
				completed[g]++
				if cerr := w.checkQuery(target, w.p.k, exclude, got, partial); cerr != nil {
					errs <- fmt.Errorf("worker %d query %d (target user %d, partial=%v): %w", g, i, qi+1, partial, cerr)
					return
				}
			}
		}(g)
	}

	// One batch worker alongside the single-query workers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(w.p.seed*100 + 99))
		for i := 0; i < 4; i++ {
			nq := 3 + rng.Intn(3)
			targets := make([][]float64, nq)
			excludes := make([]uint64, nq)
			for q := range targets {
				qi := rng.Intn(w.p.users)
				targets[q] = w.ds.Profiles[qi]
				excludes[q] = uint64(qi + 1)
			}
			got, partial, err := w.f.DiscoverShardedBatch(ctx, w.pool, targets, w.p.k, excludes)
			if err != nil {
				if !isTransportFault(err) {
					errs <- fmt.Errorf("batch %d: non-transport failure %T: %w", i, err, err)
					return
				}
				continue
			}
			completed[workers]++
			if cerr := w.checkBatch(targets, w.p.k, excludes, got, partial); cerr != nil {
				errs <- fmt.Errorf("batch %d (partial=%v): %w", i, partial, cerr)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := 0
	for _, c := range completed {
		total += c
	}
	t.Logf("static fault phase: %d/%d requests completed and verified", total, workers*queriesPer+4)
	if total == 0 {
		t.Fatal("no request completed under faults; the plan is too hostile to verify anything")
	}
}

// runPartitionPhase checks partial-degradation semantics exactly: each
// single-shard partition must flag partial and serve precisely the
// surviving shards' users; losing every shard must be an error; healing
// must restore complete results.
func runPartitionPhase(t *testing.T, w *staticWorld) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(w.p.seed*1000 + 7))

	for s := 0; s < w.p.shards; s++ {
		w.partitionShard(s)
		alive := w.aliveFn((1<<w.p.shards - 1) &^ (1 << s))
		for i := 0; i < 3; i++ {
			qi := rng.Intn(w.p.users)
			target := w.ds.Profiles[qi]
			got, partial, err := w.f.DiscoverSharded(ctx, w.pool, target, w.p.k, 0)
			if err != nil {
				t.Fatalf("shard %d partitioned, query %d: %v", s, i, err)
			}
			if !partial {
				t.Fatalf("shard %d partitioned but result not flagged partial", s)
			}
			want := w.oracle.DiscoverOwned(target, w.p.k, 0, alive)
			if cerr := frontend.EqualMatches(got, want); cerr != nil {
				t.Fatalf("shard %d partitioned, query %d: %v", s, i, cerr)
			}
		}
		w.healShard(s)
	}

	// Total partition: every shard down is an error, not an empty result.
	for s := 0; s < w.p.shards; s++ {
		w.partitionShard(s)
	}
	if _, _, err := w.f.DiscoverSharded(ctx, w.pool, w.ds.Profiles[0], w.p.k, 0); err == nil {
		t.Fatal("all shards partitioned yet discovery succeeded")
	} else if !isTransportFault(err) {
		t.Fatalf("all-shards-down error is %T (%v), want a transport fault", err, err)
	}

	// Heal everything: the next result must be complete and exact.
	for s := 0; s < w.p.shards; s++ {
		w.healShard(s)
	}
	target := w.ds.Profiles[1]
	got, partial, err := w.f.DiscoverSharded(ctx, w.pool, target, w.p.k, 0)
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if partial {
		t.Fatal("after heal: still partial")
	}
	if cerr := w.checkQuery(target, w.p.k, 0, got, false); cerr != nil {
		t.Fatalf("after heal: %v", cerr)
	}
}

// runDynamicChurnPhase exercises the updatable scheme end to end over
// remote shards: first fault-free (exact membership), then under the
// seeded schedule with the weakened invariants of checkSearch, and
// finally fault-free again to confirm surviving state is still coherent.
func runDynamicChurnPhase(t *testing.T, p simParams) {
	w := newDynWorld(t, p)
	rng := rand.New(rand.NewSource(p.seed*10000 + 3))

	// Fault-free warmup: every initial user is reachable, exactly.
	for i := 0; i < 5; i++ {
		id := uint64(rng.Intn(len(w.certain)) + 1)
		target := w.profiles[id]
		got, partial, err := w.f.DynSearchSharded(w.shards, w.nodes, target, w.bigK(), 0)
		if err != nil {
			t.Fatalf("warmup search %d: %v", i, err)
		}
		if partial {
			t.Fatalf("warmup search %d partial with healthy links", i)
		}
		if cerr := w.checkSearch(target, got, partial, id); cerr != nil {
			t.Fatalf("warmup search %d: %v", i, cerr)
		}
	}

	// Churn under faults.
	w.net.SetEnabled(true)
	ops, failures := 0, 0
	for op := 0; op < 40; op++ {
		switch r := rng.Intn(10); {
		case r < 4: // insert a brand-new user
			id := w.nextID
			w.nextID++
			profile := w.ds.Profiles[int(id)%len(w.ds.Profiles)]
			w.profiles[id] = profile
			err := w.f.DynInsertSharded(w.shards, w.nodes, w.owner, id, profile)
			if err != nil {
				if !isTransportFault(err) {
					t.Fatalf("op %d: insert %d failed with non-transport error %T: %v", op, id, err, err)
				}
				failures++
				w.markUpdateFailed(id)
				continue
			}
			w.certain[id] = true
			ops++
		case r < 6: // delete a certain user
			id := w.pickCertain(rng)
			if id == 0 {
				continue
			}
			err := w.f.DynDeleteSharded(w.shards, w.nodes, w.owner, id, w.profiles[id])
			if err != nil {
				if !isTransportFault(err) {
					t.Fatalf("op %d: delete %d failed with non-transport error %T: %v", op, id, err, err)
				}
				failures++
				w.markUpdateFailed(id)
				continue
			}
			delete(w.certain, id)
			w.deleted[id] = true
			ops++
		default: // search
			var wantID uint64
			var target []float64
			if id := w.pickCertain(rng); id != 0 && rng.Intn(2) == 0 {
				wantID, target = id, w.profiles[id]
			} else {
				target = w.ds.Profiles[rng.Intn(len(w.ds.Profiles))]
			}
			got, partial, err := w.f.DynSearchSharded(w.shards, w.nodes, target, w.bigK(), 0)
			if err != nil {
				if !isTransportFault(err) {
					t.Fatalf("op %d: search failed with non-transport error %T: %v", op, err, err)
				}
				failures++
				continue
			}
			if cerr := w.checkSearch(target, got, partial, wantID); cerr != nil {
				t.Fatalf("op %d (seed %d): %v", op, p.seed, cerr)
			}
			ops++
		}
	}
	w.net.SetEnabled(false)
	t.Logf("dynamic churn: %d ops verified, %d tolerated transport failures, %d shaky shards", ops, failures, len(w.shaky))

	// Fault-free closing pass: every certain user on a non-shaky shard is
	// still reachable and every search is clean. Two degradations are
	// legitimate here and only these two. First, a fault that killed a
	// connection after its last call completed leaves the Remote holding a
	// dead client: the first attempt on it fails once, the redial heals it
	// — absorbed by a bounded retry. Second, a shard marked shaky may be
	// durably degraded: a failed insert can leave an id indexed with its
	// profile upload lost, and every later search addressing that id fails
	// on that shard (FetchProfiles refuses unknown ids), flagging the
	// result partial forever. Searches fan out to all shards, so partial
	// is acceptable iff a shaky shard exists; non-shaky shards run a
	// read-only, retry-healed path and must answer, so the target user —
	// owned by a non-shaky shard — must be present even in a partial
	// result, which is what passing partial=false to checkSearch asserts.
	for id := range w.certain {
		if w.shaky[w.owner(id)] {
			continue
		}
		target := w.profiles[id]
		var got []frontend.Match
		var partial bool
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			got, partial, err = w.f.DynSearchSharded(w.shards, w.nodes, target, w.bigK(), 0)
			if err == nil && !partial {
				break
			}
		}
		if err != nil {
			t.Fatalf("closing search for %d: %v", id, err)
		}
		if partial && len(w.shaky) == 0 {
			t.Fatalf("closing search for %d partial with faults disabled and no shaky shards", id)
		}
		if cerr := w.checkSearch(target, got, false, id); cerr != nil {
			t.Fatalf("closing search for %d (seed %d): %v", id, p.seed, cerr)
		}
	}
}

// runConvergencePhase re-validates the static world after all the chaos:
// with faults off and partitions healed, complete oracle-exact answers
// must flow again on whatever connections survived or redialed.
func runConvergencePhase(t *testing.T, w *staticWorld) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(w.p.seed*5 + 1))
	for i := 0; i < 6; i++ {
		qi := rng.Intn(w.p.users)
		target := w.ds.Profiles[qi]
		got, partial, err := w.f.DiscoverSharded(ctx, w.pool, target, w.p.k, uint64(qi+1))
		if err != nil {
			t.Fatalf("convergence query %d: %v", i, err)
		}
		if partial {
			t.Fatalf("convergence query %d partial with healthy links", i)
		}
		if cerr := w.checkQuery(target, w.p.k, uint64(qi+1), got, false); cerr != nil {
			t.Fatalf("convergence query %d: %v", i, cerr)
		}
	}
	// And one batch.
	targets := [][]float64{w.ds.Profiles[0], w.ds.Profiles[1], w.ds.Profiles[2]}
	got, partial, err := w.f.DiscoverShardedBatch(ctx, w.pool, targets, w.p.k, nil)
	if err != nil || partial {
		t.Fatalf("convergence batch: partial=%v err=%v", partial, err)
	}
	if cerr := w.checkBatch(targets, w.p.k, nil, got, false); cerr != nil {
		t.Fatalf("convergence batch: %v", cerr)
	}
}
