package pisd_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pisd"
	"pisd/internal/core"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/obs"
	"pisd/internal/transport"
)

// The paper's access-pattern guarantee, checked end to end through the
// observability counters: every SecRec query unmasks exactly the fixed
// l·(d+1)+stash bucket budget, regardless of the target profile or how
// many users actually match. The cloud's own leakage_invariant_violations
// counter must stay at zero, and the per-query delta of
// cloud.buckets_unmasked must be constant across queries. The tests run
// under -race in CI, so they double as a concurrency check on the
// counters along the Discover path.

func leakageFixture(t *testing.T, keySeed string) (*pisd.Frontend, *dataset.Dataset, []pisd.Upload) {
	t.Helper()
	const (
		nUsers = 150
		dim    = 100
	)
	ds, err := dataset.Generate(dataset.Config{
		Users: nUsers, Dim: dim, Topics: 10, TopicsPerUser: 2,
		ActiveWords: 15, Noise: 0.02, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisd.DefaultFrontendConfig(dim)
	cfg.KeySeed = keySeed
	sf, err := pisd.NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]pisd.Upload, nUsers)
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
	}
	return sf, ds, uploads
}

func counters(reg *obs.Registry) map[string]int64 {
	return reg.Snapshot().Counters
}

// TestLeakageInvariantStatic pins the single-server case: each Discover
// unmasks exactly BucketsPerQuery() buckets, for targets with very
// different match densities, and DiscoverBatch costs exactly q times that.
func TestLeakageInvariantStatic(t *testing.T) {
	sf, ds, uploads := leakageFixture(t, "leakage-static")
	idx, encProfiles, err := sf.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	cs := pisd.NewCloud()
	reg := obs.NewRegistry()
	cs.SetRegistry(reg)
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	p, err := sf.IndexParams()
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(p.BucketsPerQuery())
	if budget <= 0 {
		t.Fatalf("bucket budget = %d", budget)
	}

	// Targets from different corners of the population: match counts vary,
	// unmasked bucket counts must not.
	targets := []uint64{1, 40, 77, 150}
	for _, id := range targets {
		before := counters(reg)
		matches, err := sf.Discover(cs, ds.Profiles[id-1], 5, id)
		if err != nil {
			t.Fatal(err)
		}
		after := counters(reg)
		unmasked := after["cloud.buckets_unmasked"] - before["cloud.buckets_unmasked"]
		if unmasked != budget {
			t.Errorf("target %d (%d matches): unmasked %d buckets, want the fixed budget %d",
				id, len(matches), unmasked, budget)
		}
		if q := after["cloud.queries"] - before["cloud.queries"]; q != 1 {
			t.Errorf("target %d: cloud.queries advanced by %d, want 1", id, q)
		}
	}

	// Batched discovery: one SecRecBatch call, exactly q·budget buckets.
	profiles := [][]float64{ds.Profiles[0], ds.Profiles[59], ds.Profiles[119]}
	excludes := []uint64{1, 60, 120}
	before := counters(reg)
	if _, err := sf.DiscoverBatch(cs, profiles, 5, excludes); err != nil {
		t.Fatal(err)
	}
	after := counters(reg)
	if unmasked := after["cloud.buckets_unmasked"] - before["cloud.buckets_unmasked"]; unmasked != 3*budget {
		t.Errorf("batch of 3: unmasked %d buckets, want %d", unmasked, 3*budget)
	}
	if q := after["cloud.queries"] - before["cloud.queries"]; q != 3 {
		t.Errorf("batch of 3: cloud.queries advanced by %d, want 3", q)
	}

	if v := after["cloud.leakage_invariant_violations"]; v != 0 {
		t.Errorf("cloud.leakage_invariant_violations = %d, want 0", v)
	}
}

// TestLeakageInvariantTuned pins the invariant under the autotuner's
// population-tiered operating point: swapping the default (l, atoms, W, d)
// for the tuned parameters changes the SIZE of the fixed bucket budget —
// l·(d+1)+stash evaluated at the tuned l and d — but not its constancy.
// Every discovery still unmasks exactly that budget regardless of the
// target, which is the leakage argument (DESIGN.md §16) for shipping tuned
// parameters at all.
func TestLeakageInvariantTuned(t *testing.T) {
	const (
		nUsers = 150
		dim    = 100
	)
	ds, err := dataset.Generate(dataset.Config{
		Users: nUsers, Dim: dim, Topics: 10, TopicsPerUser: 2,
		ActiveWords: 15, Noise: 0.02, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisd.FrontendConfigForPopulation(dim, nUsers)
	cfg.KeySeed = "leakage-tuned"
	if def := pisd.DefaultFrontendConfig(dim); cfg.LSH == def.LSH && cfg.ProbeRange == def.ProbeRange {
		t.Fatal("tuned config equals the default — the tuned tier is not being exercised")
	}
	sf, err := pisd.NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]pisd.Upload, nUsers)
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
	}
	idx, encProfiles, err := sf.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	cs := pisd.NewCloud()
	reg := obs.NewRegistry()
	cs.SetRegistry(reg)
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	p, err := sf.IndexParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.Tables != cfg.LSH.Tables || p.ProbeRange != cfg.ProbeRange {
		t.Fatalf("index params l=%d d=%d do not reflect the tuned config l=%d d=%d",
			p.Tables, p.ProbeRange, cfg.LSH.Tables, cfg.ProbeRange)
	}
	budget := int64(p.BucketsPerQuery())
	if budget <= 0 {
		t.Fatalf("bucket budget = %d", budget)
	}

	for _, id := range []uint64{1, 40, 77, 150} {
		before := counters(reg)
		matches, err := sf.Discover(cs, ds.Profiles[id-1], 5, id)
		if err != nil {
			t.Fatal(err)
		}
		after := counters(reg)
		unmasked := after["cloud.buckets_unmasked"] - before["cloud.buckets_unmasked"]
		if unmasked != budget {
			t.Errorf("target %d (%d matches): unmasked %d buckets, want the fixed tuned budget %d",
				id, len(matches), unmasked, budget)
		}
	}
	if v := counters(reg)["cloud.leakage_invariant_violations"]; v != 0 {
		t.Errorf("cloud.leakage_invariant_violations = %d, want 0", v)
	}
}

// TestLeakageInvariantSharded pins the fan-out case: every shard answers
// every query against its own projected index, so per fan-out each shard
// unmasks exactly its own index's bucket budget — no shard's access
// pattern depends on which shard holds the matching users.
func TestLeakageInvariantSharded(t *testing.T) {
	sf, ds, uploads := leakageFixture(t, "leakage-sharded")
	const nShards = 3
	shards, err := sf.BuildShardedIndex(uploads, nShards, nil)
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]*obs.Registry, nShards)
	nodes := make([]pisd.ShardNode, nShards)
	for s, sh := range shards {
		cs := pisd.NewCloud()
		regs[s] = obs.NewRegistry()
		cs.SetRegistry(regs[s])
		cs.SetIndex(sh.Index)
		cs.PutProfiles(sh.EncProfiles)
		nodes[s] = pisd.NewLocalShard(cs)
	}
	pool, err := pisd.NewShardPool(pisd.DefaultShardPoolConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}

	for _, id := range []uint64{3, 88, 149} {
		before := make([]map[string]int64, nShards)
		for s := range regs {
			before[s] = counters(regs[s])
		}
		_, partial, err := sf.DiscoverSharded(context.Background(), pool, ds.Profiles[id-1], 5, id)
		if err != nil {
			t.Fatal(err)
		}
		if partial {
			t.Fatal("local fan-out reported partial results")
		}
		for s := range regs {
			after := counters(regs[s])
			budget := int64(shards[s].Index.Params().BucketsPerQuery())
			if unmasked := after["cloud.buckets_unmasked"] - before[s]["cloud.buckets_unmasked"]; unmasked != budget {
				t.Errorf("target %d shard %d: unmasked %d buckets, want %d", id, s, unmasked, budget)
			}
			if q := after["cloud.queries"] - before[s]["cloud.queries"]; q != 1 {
				t.Errorf("target %d shard %d: cloud.queries advanced by %d, want 1", id, s, q)
			}
			if v := after["cloud.leakage_invariant_violations"]; v != 0 {
				t.Errorf("shard %d: leakage_invariant_violations = %d, want 0", s, v)
			}
		}
	}
}

// TestLeakageInvariantDynamic pins the dynamic scheme's weaker but still
// data-independent profile: a search fetches at most l·(d+1) buckets (the
// client dedups PRF position collisions before fetching), and the fetched
// count is a pure function of the target's metadata — repeating a search
// fetches exactly the same number again.
func TestLeakageInvariantDynamic(t *testing.T) {
	sf, ds, uploads := leakageFixture(t, "leakage-dynamic")
	dynIdx, dynClient, dynProfiles, err := sf.BuildDynamicIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	cs := pisd.NewCloud()
	reg := obs.NewRegistry()
	cs.SetRegistry(reg)
	cs.SetDynIndex(dynIdx)
	cs.PutProfiles(dynProfiles)

	p, err := sf.IndexParams()
	if err != nil {
		t.Fatal(err)
	}
	maxRefs := int64(p.Tables * (p.ProbeRange + 1))

	for _, id := range []uint64{5, 111} {
		fetched := make([]int64, 2)
		for round := range fetched {
			before := counters(reg)
			if _, err := sf.DynSearch(dynClient, cs, cs, ds.Profiles[id-1], 5, id); err != nil {
				t.Fatal(err)
			}
			after := counters(reg)
			fetched[round] = after["cloud.dyn_buckets_fetched"] - before["cloud.dyn_buckets_fetched"]
			if fetched[round] <= 0 || fetched[round] > maxRefs {
				t.Errorf("target %d round %d: fetched %d buckets, want in (0, %d]",
					id, round, fetched[round], maxRefs)
			}
		}
		if fetched[0] != fetched[1] {
			t.Errorf("target %d: fetch count not deterministic: %d then %d", id, fetched[0], fetched[1])
		}
	}
}

// TestLeakageInvariantServingCache pins DESIGN.md §15's claim for the
// cached serving path: a result-cache hit is a strict subtraction from
// the observable transcript. The first discovery of a search pattern
// pays exactly the fixed per-shard bucket budget; repeating the pattern
// is answered entirely inside the trusted frontend — zero additional
// cloud.queries and zero additional cloud.buckets_unmasked on every
// shard — so the cloud's view under caching is a subset of the view
// without it.
func TestLeakageInvariantServingCache(t *testing.T) {
	sf, ds, uploads := leakageFixture(t, "leakage-serving-cache")
	const nShards = 2
	shards, err := sf.BuildShardedIndex(uploads, nShards, nil)
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]*obs.Registry, nShards)
	nodes := make([]pisd.ShardNode, nShards)
	for s, sh := range shards {
		cs := pisd.NewCloud()
		regs[s] = obs.NewRegistry()
		cs.SetRegistry(regs[s])
		cs.SetIndex(sh.Index)
		cs.PutProfiles(sh.EncProfiles)
		nodes[s] = pisd.NewLocalShard(cs)
	}
	pool, err := pisd.NewShardPool(pisd.DefaultShardPoolConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}

	// Isolate the frontend's own metrics so cache_hits is attributable.
	freg := obs.NewRegistry()
	frontend.SetRegistry(freg)
	defer frontend.SetRegistry(obs.Default)

	serving, err := sf.NewServing(pool, pisd.ServingConfig{MaxBatch: 4, CacheEntries: 32})
	if err != nil {
		t.Fatal(err)
	}

	const target = uint64(42)
	discover := func() {
		t.Helper()
		_, partial, err := serving.Discover(context.Background(), ds.Profiles[target-1], 5, target)
		if err != nil {
			t.Fatal(err)
		}
		if partial {
			t.Fatal("local fan-out reported partial results")
		}
	}

	// Cold query: the full fixed budget on every shard, exactly once.
	before := make([]map[string]int64, nShards)
	for s := range regs {
		before[s] = counters(regs[s])
	}
	discover()
	for s := range regs {
		after := counters(regs[s])
		budget := int64(shards[s].Index.Params().BucketsPerQuery())
		if unmasked := after["cloud.buckets_unmasked"] - before[s]["cloud.buckets_unmasked"]; unmasked != budget {
			t.Errorf("cold query shard %d: unmasked %d buckets, want %d", s, unmasked, budget)
		}
		if q := after["cloud.queries"] - before[s]["cloud.queries"]; q != 1 {
			t.Errorf("cold query shard %d: cloud.queries advanced by %d, want 1", s, q)
		}
	}

	// Repeats of the same search pattern: the cloud sees NOTHING.
	for s := range regs {
		before[s] = counters(regs[s])
	}
	const repeats = 3
	for i := 0; i < repeats; i++ {
		discover()
	}
	for s := range regs {
		after := counters(regs[s])
		if unmasked := after["cloud.buckets_unmasked"] - before[s]["cloud.buckets_unmasked"]; unmasked != 0 {
			t.Errorf("cache hits unmasked %d buckets on shard %d, want 0", unmasked, s)
		}
		if q := after["cloud.queries"] - before[s]["cloud.queries"]; q != 0 {
			t.Errorf("cache hits advanced cloud.queries by %d on shard %d, want 0", q, s)
		}
		if v := after["cloud.leakage_invariant_violations"]; v != 0 {
			t.Errorf("shard %d: leakage_invariant_violations = %d, want 0", s, v)
		}
	}
	fc := counters(freg)
	if got := fc["frontend.cache_hits"]; got != repeats {
		t.Errorf("frontend.cache_hits = %d, want %d", got, repeats)
	}
	if got := fc["frontend.cache_misses"]; got != 1 {
		t.Errorf("frontend.cache_misses = %d, want 1", got)
	}
}

// downReplica wraps a replica node with a kill switch: while down, every
// read fails at the wire with a connection error WITHOUT reaching the
// underlying cloud, so the replica's own counters prove it saw nothing.
type downReplica struct {
	pisd.ReplicaNode
	mu   sync.Mutex
	down bool
}

func (d *downReplica) setDown(v bool) {
	d.mu.Lock()
	d.down = v
	d.mu.Unlock()
}

func (d *downReplica) offline() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down {
		return &transport.ConnError{Op: "call", Err: errors.New("replica down")}
	}
	return nil
}

func (d *downReplica) Ping(ctx context.Context) error {
	if err := d.offline(); err != nil {
		return err
	}
	return d.ReplicaNode.Ping(ctx)
}

func (d *downReplica) SecRec(ctx context.Context, tr *core.Trapdoor) ([]uint64, [][]byte, error) {
	if err := d.offline(); err != nil {
		return nil, nil, err
	}
	return d.ReplicaNode.SecRec(ctx, tr)
}

func (d *downReplica) SecRecBatch(ctx context.Context, ts []*core.Trapdoor) ([][]uint64, [][][]byte, error) {
	if err := d.offline(); err != nil {
		return nil, nil, err
	}
	return d.ReplicaNode.SecRecBatch(ctx, ts)
}

func (d *downReplica) FetchProfiles(ids []uint64) ([][]byte, error) {
	if err := d.offline(); err != nil {
		return nil, err
	}
	return d.ReplicaNode.FetchProfiles(ids)
}

// TestLeakageInvariantReplicated pins the access-pattern guarantee for the
// replicated fleet (DESIGN.md §17): replication multiplies WHERE a query
// can be served, never HOW MUCH any one store sees.
//
// Failover: with every replica healthy, exactly one replica per group
// unmasks exactly the fixed l·(d+1)+stash budget per query and its
// siblings unmask zero. When the serving replica dies, the sibling takes
// over at exactly the same budget — the dead replica's cloud sees nothing
// at all, and no query ever splits or doubles its budget across replicas.
//
// Repair: an anti-entropy repair of a dead-empty replica is, to each
// store, the dynamic scheme's ordinary bucket traffic — the source serves
// a full data-independent fetch sweep (tables × width buckets, exactly
// what churn reads look like), the destination absorbs the same-sized
// store sweep, and a repeated repair produces byte-identical traffic
// counts, proving the pattern carries no information about which buckets
// actually differed. Per-query fetch budgets are identical on source and
// repaired replica afterwards.
func TestLeakageInvariantReplicated(t *testing.T) {
	sf, ds, uploads := leakageFixture(t, "leakage-replicated")
	const (
		nPartitions = 2
		nReplicas   = 2
	)
	shards, err := sf.BuildShardedIndex(uploads, nPartitions, nil)
	if err != nil {
		t.Fatal(err)
	}

	regs := make([][]*obs.Registry, nPartitions)
	reps := make([][]*downReplica, nPartitions)
	nodes := make([]pisd.ShardNode, nPartitions)
	greg := obs.NewRegistry()
	groups := make([]*pisd.ReplicaGroup, nPartitions)
	for s, sh := range shards {
		regs[s] = make([]*obs.Registry, nReplicas)
		reps[s] = make([]*downReplica, nReplicas)
		members := make([]pisd.ReplicaNode, nReplicas)
		for r := 0; r < nReplicas; r++ {
			cs := pisd.NewCloud()
			regs[s][r] = obs.NewRegistry()
			cs.SetRegistry(regs[s][r])
			cs.SetIndex(sh.Index)
			cs.PutProfiles(sh.EncProfiles)
			reps[s][r] = &downReplica{ReplicaNode: pisd.NewLocalShard(cs)}
			members[r] = reps[s][r]
		}
		g, err := pisd.NewReplicaGroup(s, pisd.ReplicaGroupConfig{}, members...)
		if err != nil {
			t.Fatal(err)
		}
		g.SetRegistry(greg)
		groups[s] = g
		nodes[s] = g
	}
	pool, err := pisd.NewShardPool(pisd.DefaultShardPoolConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}

	budget := func(s int) int64 { return int64(shards[s].Index.Params().BucketsPerQuery()) }
	snapshot := func() [][]map[string]int64 {
		out := make([][]map[string]int64, nPartitions)
		for s := range regs {
			out[s] = make([]map[string]int64, nReplicas)
			for r := range regs[s] {
				out[s][r] = counters(regs[s][r])
			}
		}
		return out
	}
	unmaskedDelta := func(before [][]map[string]int64, s, r int) int64 {
		return counters(regs[s][r])["cloud.buckets_unmasked"] - before[s][r]["cloud.buckets_unmasked"]
	}
	discover := func(id uint64) {
		t.Helper()
		_, partial, err := sf.DiscoverSharded(context.Background(), pool, ds.Profiles[id-1], 5, id)
		if err != nil {
			t.Fatal(err)
		}
		if partial {
			t.Fatal("replicated fan-out reported partial results with a live replica per group")
		}
	}

	// Healthy fleet: replica 0 of each group serves exactly the budget,
	// replica 1 sees nothing.
	for _, id := range []uint64{7, 93} {
		before := snapshot()
		discover(id)
		for s := 0; s < nPartitions; s++ {
			if got := unmaskedDelta(before, s, 0); got != budget(s) {
				t.Errorf("healthy, target %d: group %d serving replica unmasked %d, want budget %d", id, s, got, budget(s))
			}
			if got := unmaskedDelta(before, s, 1); got != 0 {
				t.Errorf("healthy, target %d: group %d idle replica unmasked %d, want 0", id, s, got)
			}
		}
	}

	// Kill the serving replica everywhere: the sibling serves the SAME
	// budget, the corpse's cloud sees nothing (the failure is at the wire).
	for s := range reps {
		reps[s][0].setDown(true)
	}
	failovers0 := counters(greg)["replica.failovers"]
	before := snapshot()
	discover(42)
	if d := counters(greg)["replica.failovers"] - failovers0; d != nPartitions {
		t.Errorf("replica.failovers advanced by %d, want %d (one per group)", d, nPartitions)
	}
	for s := 0; s < nPartitions; s++ {
		if got := unmaskedDelta(before, s, 0); got != 0 {
			t.Errorf("failover: group %d dead replica unmasked %d, want 0", s, got)
		}
		if got := unmaskedDelta(before, s, 1); got != budget(s) {
			t.Errorf("failover: group %d takeover replica unmasked %d, want budget %d", s, got, budget(s))
		}
		if q := counters(regs[s][1])["cloud.queries"] - before[s][1]["cloud.queries"]; q != 1 {
			t.Errorf("failover: group %d takeover replica answered %d queries, want 1", s, q)
		}
	}

	// Recovery: the healed replica resumes serving at the same budget.
	for s := range reps {
		reps[s][0].setDown(false)
	}
	before = snapshot()
	discover(108)
	for s := 0; s < nPartitions; s++ {
		total := unmaskedDelta(before, s, 0) + unmaskedDelta(before, s, 1)
		if total != budget(s) {
			t.Errorf("healed: group %d unmasked %d across replicas, want exactly one budget %d", s, total, budget(s))
		}
	}

	for s := range regs {
		for r := range regs[s] {
			if v := counters(regs[s][r])["cloud.leakage_invariant_violations"]; v != 0 {
				t.Errorf("group %d replica %d: leakage_invariant_violations = %d, want 0", s, r, v)
			}
		}
	}

	// ---- repair traffic: anti-entropy looks exactly like churn ----

	dsf, dds, duploads := leakageFixture(t, "leakage-replicated-dyn")
	_ = dds
	dshards, err := dsf.BuildShardedDynamicIndex(duploads, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	srcCS, dstCS := pisd.NewCloud(), pisd.NewCloud()
	srcReg, dstReg := obs.NewRegistry(), obs.NewRegistry()
	srcCS.SetRegistry(srcReg)
	dstCS.SetRegistry(dstReg)
	srcCS.SetDynIndex(dshards[0].Index)
	srcCS.PutProfiles(dshards[0].EncProfiles)
	src, dst := pisd.NewLocalShard(srcCS), pisd.NewLocalShard(dstCS)

	repair, err := pisd.NewReplicaRepair(dshards, 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dsf.IndexParams()
	if err != nil {
		t.Fatal(err)
	}
	sweep := int64(p.Tables * dshards[0].Index.Width())

	var fetched, stored [2]int64
	for round := 0; round < 2; round++ {
		sb, db := counters(srcReg), counters(dstReg)
		if err := repair(0, src, dst); err != nil {
			t.Fatalf("repair round %d: %v", round, err)
		}
		sa, da := counters(srcReg), counters(dstReg)
		fetched[round] = sa["cloud.dyn_buckets_fetched"] - sb["cloud.dyn_buckets_fetched"]
		stored[round] = da["cloud.dyn_buckets_stored"] - db["cloud.dyn_buckets_stored"]
		if fetched[round] != sweep {
			t.Errorf("repair round %d: source served %d bucket fetches, want the full data-independent sweep %d",
				round, fetched[round], sweep)
		}
		if stored[round] != sweep {
			t.Errorf("repair round %d: destination absorbed %d bucket stores, want %d", round, stored[round], sweep)
		}
		if d := sa["cloud.dyn_buckets_stored"] - sb["cloud.dyn_buckets_stored"]; d != 0 {
			t.Errorf("repair round %d: source saw %d bucket stores, want 0", round, d)
		}
		if d := da["cloud.dyn_buckets_fetched"] - db["cloud.dyn_buckets_fetched"]; d != 0 {
			t.Errorf("repair round %d: destination saw %d bucket fetches, want 0", round, d)
		}
	}
	// Round two repaired an already-converged replica; identical traffic
	// proves the pattern is independent of which buckets differed.
	if fetched[0] != fetched[1] || stored[0] != stored[1] {
		t.Errorf("repair traffic varies with replica state: fetched %v stored %v", fetched, stored)
	}

	// Per-query budget identical on source and repaired replica.
	target := dds.Profiles[10]
	sb := counters(srcReg)
	if _, err := dsf.DynSearch(dshards[0].Client, srcCS, srcCS, target, 5, 11); err != nil {
		t.Fatal(err)
	}
	srcFetch := counters(srcReg)["cloud.dyn_buckets_fetched"] - sb["cloud.dyn_buckets_fetched"]
	db := counters(dstReg)
	if _, err := dsf.DynSearch(dshards[0].Client, dstCS, dstCS, target, 5, 11); err != nil {
		t.Fatal(err)
	}
	dstFetch := counters(dstReg)["cloud.dyn_buckets_fetched"] - db["cloud.dyn_buckets_fetched"]
	if srcFetch != dstFetch || srcFetch <= 0 {
		t.Errorf("post-repair search budgets differ: source fetched %d, repaired replica fetched %d", srcFetch, dstFetch)
	}
}
