package pisd_test

import (
	"context"
	"testing"

	"pisd"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/obs"
)

// The paper's access-pattern guarantee, checked end to end through the
// observability counters: every SecRec query unmasks exactly the fixed
// l·(d+1)+stash bucket budget, regardless of the target profile or how
// many users actually match. The cloud's own leakage_invariant_violations
// counter must stay at zero, and the per-query delta of
// cloud.buckets_unmasked must be constant across queries. The tests run
// under -race in CI, so they double as a concurrency check on the
// counters along the Discover path.

func leakageFixture(t *testing.T, keySeed string) (*pisd.Frontend, *dataset.Dataset, []pisd.Upload) {
	t.Helper()
	const (
		nUsers = 150
		dim    = 100
	)
	ds, err := dataset.Generate(dataset.Config{
		Users: nUsers, Dim: dim, Topics: 10, TopicsPerUser: 2,
		ActiveWords: 15, Noise: 0.02, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisd.DefaultFrontendConfig(dim)
	cfg.KeySeed = keySeed
	sf, err := pisd.NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]pisd.Upload, nUsers)
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
	}
	return sf, ds, uploads
}

func counters(reg *obs.Registry) map[string]int64 {
	return reg.Snapshot().Counters
}

// TestLeakageInvariantStatic pins the single-server case: each Discover
// unmasks exactly BucketsPerQuery() buckets, for targets with very
// different match densities, and DiscoverBatch costs exactly q times that.
func TestLeakageInvariantStatic(t *testing.T) {
	sf, ds, uploads := leakageFixture(t, "leakage-static")
	idx, encProfiles, err := sf.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	cs := pisd.NewCloud()
	reg := obs.NewRegistry()
	cs.SetRegistry(reg)
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	p, err := sf.IndexParams()
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(p.BucketsPerQuery())
	if budget <= 0 {
		t.Fatalf("bucket budget = %d", budget)
	}

	// Targets from different corners of the population: match counts vary,
	// unmasked bucket counts must not.
	targets := []uint64{1, 40, 77, 150}
	for _, id := range targets {
		before := counters(reg)
		matches, err := sf.Discover(cs, ds.Profiles[id-1], 5, id)
		if err != nil {
			t.Fatal(err)
		}
		after := counters(reg)
		unmasked := after["cloud.buckets_unmasked"] - before["cloud.buckets_unmasked"]
		if unmasked != budget {
			t.Errorf("target %d (%d matches): unmasked %d buckets, want the fixed budget %d",
				id, len(matches), unmasked, budget)
		}
		if q := after["cloud.queries"] - before["cloud.queries"]; q != 1 {
			t.Errorf("target %d: cloud.queries advanced by %d, want 1", id, q)
		}
	}

	// Batched discovery: one SecRecBatch call, exactly q·budget buckets.
	profiles := [][]float64{ds.Profiles[0], ds.Profiles[59], ds.Profiles[119]}
	excludes := []uint64{1, 60, 120}
	before := counters(reg)
	if _, err := sf.DiscoverBatch(cs, profiles, 5, excludes); err != nil {
		t.Fatal(err)
	}
	after := counters(reg)
	if unmasked := after["cloud.buckets_unmasked"] - before["cloud.buckets_unmasked"]; unmasked != 3*budget {
		t.Errorf("batch of 3: unmasked %d buckets, want %d", unmasked, 3*budget)
	}
	if q := after["cloud.queries"] - before["cloud.queries"]; q != 3 {
		t.Errorf("batch of 3: cloud.queries advanced by %d, want 3", q)
	}

	if v := after["cloud.leakage_invariant_violations"]; v != 0 {
		t.Errorf("cloud.leakage_invariant_violations = %d, want 0", v)
	}
}

// TestLeakageInvariantTuned pins the invariant under the autotuner's
// population-tiered operating point: swapping the default (l, atoms, W, d)
// for the tuned parameters changes the SIZE of the fixed bucket budget —
// l·(d+1)+stash evaluated at the tuned l and d — but not its constancy.
// Every discovery still unmasks exactly that budget regardless of the
// target, which is the leakage argument (DESIGN.md §16) for shipping tuned
// parameters at all.
func TestLeakageInvariantTuned(t *testing.T) {
	const (
		nUsers = 150
		dim    = 100
	)
	ds, err := dataset.Generate(dataset.Config{
		Users: nUsers, Dim: dim, Topics: 10, TopicsPerUser: 2,
		ActiveWords: 15, Noise: 0.02, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisd.FrontendConfigForPopulation(dim, nUsers)
	cfg.KeySeed = "leakage-tuned"
	if def := pisd.DefaultFrontendConfig(dim); cfg.LSH == def.LSH && cfg.ProbeRange == def.ProbeRange {
		t.Fatal("tuned config equals the default — the tuned tier is not being exercised")
	}
	sf, err := pisd.NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]pisd.Upload, nUsers)
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
	}
	idx, encProfiles, err := sf.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	cs := pisd.NewCloud()
	reg := obs.NewRegistry()
	cs.SetRegistry(reg)
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	p, err := sf.IndexParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.Tables != cfg.LSH.Tables || p.ProbeRange != cfg.ProbeRange {
		t.Fatalf("index params l=%d d=%d do not reflect the tuned config l=%d d=%d",
			p.Tables, p.ProbeRange, cfg.LSH.Tables, cfg.ProbeRange)
	}
	budget := int64(p.BucketsPerQuery())
	if budget <= 0 {
		t.Fatalf("bucket budget = %d", budget)
	}

	for _, id := range []uint64{1, 40, 77, 150} {
		before := counters(reg)
		matches, err := sf.Discover(cs, ds.Profiles[id-1], 5, id)
		if err != nil {
			t.Fatal(err)
		}
		after := counters(reg)
		unmasked := after["cloud.buckets_unmasked"] - before["cloud.buckets_unmasked"]
		if unmasked != budget {
			t.Errorf("target %d (%d matches): unmasked %d buckets, want the fixed tuned budget %d",
				id, len(matches), unmasked, budget)
		}
	}
	if v := counters(reg)["cloud.leakage_invariant_violations"]; v != 0 {
		t.Errorf("cloud.leakage_invariant_violations = %d, want 0", v)
	}
}

// TestLeakageInvariantSharded pins the fan-out case: every shard answers
// every query against its own projected index, so per fan-out each shard
// unmasks exactly its own index's bucket budget — no shard's access
// pattern depends on which shard holds the matching users.
func TestLeakageInvariantSharded(t *testing.T) {
	sf, ds, uploads := leakageFixture(t, "leakage-sharded")
	const nShards = 3
	shards, err := sf.BuildShardedIndex(uploads, nShards, nil)
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]*obs.Registry, nShards)
	nodes := make([]pisd.ShardNode, nShards)
	for s, sh := range shards {
		cs := pisd.NewCloud()
		regs[s] = obs.NewRegistry()
		cs.SetRegistry(regs[s])
		cs.SetIndex(sh.Index)
		cs.PutProfiles(sh.EncProfiles)
		nodes[s] = pisd.NewLocalShard(cs)
	}
	pool, err := pisd.NewShardPool(pisd.DefaultShardPoolConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}

	for _, id := range []uint64{3, 88, 149} {
		before := make([]map[string]int64, nShards)
		for s := range regs {
			before[s] = counters(regs[s])
		}
		_, partial, err := sf.DiscoverSharded(context.Background(), pool, ds.Profiles[id-1], 5, id)
		if err != nil {
			t.Fatal(err)
		}
		if partial {
			t.Fatal("local fan-out reported partial results")
		}
		for s := range regs {
			after := counters(regs[s])
			budget := int64(shards[s].Index.Params().BucketsPerQuery())
			if unmasked := after["cloud.buckets_unmasked"] - before[s]["cloud.buckets_unmasked"]; unmasked != budget {
				t.Errorf("target %d shard %d: unmasked %d buckets, want %d", id, s, unmasked, budget)
			}
			if q := after["cloud.queries"] - before[s]["cloud.queries"]; q != 1 {
				t.Errorf("target %d shard %d: cloud.queries advanced by %d, want 1", id, s, q)
			}
			if v := after["cloud.leakage_invariant_violations"]; v != 0 {
				t.Errorf("shard %d: leakage_invariant_violations = %d, want 0", s, v)
			}
		}
	}
}

// TestLeakageInvariantDynamic pins the dynamic scheme's weaker but still
// data-independent profile: a search fetches at most l·(d+1) buckets (the
// client dedups PRF position collisions before fetching), and the fetched
// count is a pure function of the target's metadata — repeating a search
// fetches exactly the same number again.
func TestLeakageInvariantDynamic(t *testing.T) {
	sf, ds, uploads := leakageFixture(t, "leakage-dynamic")
	dynIdx, dynClient, dynProfiles, err := sf.BuildDynamicIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	cs := pisd.NewCloud()
	reg := obs.NewRegistry()
	cs.SetRegistry(reg)
	cs.SetDynIndex(dynIdx)
	cs.PutProfiles(dynProfiles)

	p, err := sf.IndexParams()
	if err != nil {
		t.Fatal(err)
	}
	maxRefs := int64(p.Tables * (p.ProbeRange + 1))

	for _, id := range []uint64{5, 111} {
		fetched := make([]int64, 2)
		for round := range fetched {
			before := counters(reg)
			if _, err := sf.DynSearch(dynClient, cs, cs, ds.Profiles[id-1], 5, id); err != nil {
				t.Fatal(err)
			}
			after := counters(reg)
			fetched[round] = after["cloud.dyn_buckets_fetched"] - before["cloud.dyn_buckets_fetched"]
			if fetched[round] <= 0 || fetched[round] > maxRefs {
				t.Errorf("target %d round %d: fetched %d buckets, want in (0, %d]",
					id, round, fetched[round], maxRefs)
			}
		}
		if fetched[0] != fetched[1] {
			t.Errorf("target %d: fetch count not deterministic: %d then %d", id, fetched[0], fetched[1])
		}
	}
}

// TestLeakageInvariantServingCache pins DESIGN.md §15's claim for the
// cached serving path: a result-cache hit is a strict subtraction from
// the observable transcript. The first discovery of a search pattern
// pays exactly the fixed per-shard bucket budget; repeating the pattern
// is answered entirely inside the trusted frontend — zero additional
// cloud.queries and zero additional cloud.buckets_unmasked on every
// shard — so the cloud's view under caching is a subset of the view
// without it.
func TestLeakageInvariantServingCache(t *testing.T) {
	sf, ds, uploads := leakageFixture(t, "leakage-serving-cache")
	const nShards = 2
	shards, err := sf.BuildShardedIndex(uploads, nShards, nil)
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]*obs.Registry, nShards)
	nodes := make([]pisd.ShardNode, nShards)
	for s, sh := range shards {
		cs := pisd.NewCloud()
		regs[s] = obs.NewRegistry()
		cs.SetRegistry(regs[s])
		cs.SetIndex(sh.Index)
		cs.PutProfiles(sh.EncProfiles)
		nodes[s] = pisd.NewLocalShard(cs)
	}
	pool, err := pisd.NewShardPool(pisd.DefaultShardPoolConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}

	// Isolate the frontend's own metrics so cache_hits is attributable.
	freg := obs.NewRegistry()
	frontend.SetRegistry(freg)
	defer frontend.SetRegistry(obs.Default)

	serving, err := sf.NewServing(pool, pisd.ServingConfig{MaxBatch: 4, CacheEntries: 32})
	if err != nil {
		t.Fatal(err)
	}

	const target = uint64(42)
	discover := func() {
		t.Helper()
		_, partial, err := serving.Discover(context.Background(), ds.Profiles[target-1], 5, target)
		if err != nil {
			t.Fatal(err)
		}
		if partial {
			t.Fatal("local fan-out reported partial results")
		}
	}

	// Cold query: the full fixed budget on every shard, exactly once.
	before := make([]map[string]int64, nShards)
	for s := range regs {
		before[s] = counters(regs[s])
	}
	discover()
	for s := range regs {
		after := counters(regs[s])
		budget := int64(shards[s].Index.Params().BucketsPerQuery())
		if unmasked := after["cloud.buckets_unmasked"] - before[s]["cloud.buckets_unmasked"]; unmasked != budget {
			t.Errorf("cold query shard %d: unmasked %d buckets, want %d", s, unmasked, budget)
		}
		if q := after["cloud.queries"] - before[s]["cloud.queries"]; q != 1 {
			t.Errorf("cold query shard %d: cloud.queries advanced by %d, want 1", s, q)
		}
	}

	// Repeats of the same search pattern: the cloud sees NOTHING.
	for s := range regs {
		before[s] = counters(regs[s])
	}
	const repeats = 3
	for i := 0; i < repeats; i++ {
		discover()
	}
	for s := range regs {
		after := counters(regs[s])
		if unmasked := after["cloud.buckets_unmasked"] - before[s]["cloud.buckets_unmasked"]; unmasked != 0 {
			t.Errorf("cache hits unmasked %d buckets on shard %d, want 0", unmasked, s)
		}
		if q := after["cloud.queries"] - before[s]["cloud.queries"]; q != 0 {
			t.Errorf("cache hits advanced cloud.queries by %d on shard %d, want 0", q, s)
		}
		if v := after["cloud.leakage_invariant_violations"]; v != 0 {
			t.Errorf("shard %d: leakage_invariant_violations = %d, want 0", s, v)
		}
	}
	fc := counters(freg)
	if got := fc["frontend.cache_hits"]; got != repeats {
		t.Errorf("frontend.cache_hits = %d, want %d", got, repeats)
	}
	if got := fc["frontend.cache_misses"]; got != 1 {
		t.Errorf("frontend.cache_misses = %d, want 1", got)
	}
}
