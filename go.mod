module pisd

go 1.24
