// Benchmark metric helpers: every figure/throughput benchmark stamps the
// LSH operating point it ran under onto its metric line, so the BENCH
// json trajectory files record which (l, atoms, W, d) produced each
// number and tuned-vs-default runs stay distinguishable after the fact.
package pisd

import (
	"testing"

	"pisd/internal/frontend"
)

// reportLSHParams attaches an explicit LSH operating point to the
// benchmark's metric line. Benchmarks that drive the index with synthetic
// random metadata (no live hash family) report atoms/width as 0.
func reportLSHParams(b *testing.B, tables, atoms int, width float64, probeRange int) {
	b.Helper()
	b.ReportMetric(float64(tables), "lsh_l")
	b.ReportMetric(float64(atoms), "lsh_atoms")
	b.ReportMetric(width, "lsh_width")
	b.ReportMetric(float64(probeRange), "lsh_d")
}

// reportLSHConfig stamps a front-end configuration's operating point.
func reportLSHConfig(b *testing.B, cfg frontend.Config) {
	b.Helper()
	reportLSHParams(b, cfg.LSH.Tables, cfg.LSH.Atoms, cfg.LSH.Width, cfg.ProbeRange)
}
