// Command pisd-server runs the untrusted cloud server CS: a TCP service
// storing encrypted images, encrypted profiles and the secure index, and
// answering SecRec discovery requests and dynamic bucket updates. It holds
// no key material.
//
//	pisd-server -addr 127.0.0.1:7001 [-state /var/lib/pisd]
//
// With -state, the server loads its ciphertext state (index, encrypted
// profiles, encrypted images) from the directory at startup and saves it
// back on shutdown.
//
// With -segments, the server backs the static index with a segmented
// on-disk store built by pisd-segbuild: SecRec fans trapdoors across the
// live segments, reading bucket ranges on demand instead of holding the
// index in RAM. Combine with -state to also serve the encrypted profiles
// pisd-segbuild saved there.
//
// With -shards N (N > 1) the process hosts an N-shard cloud tier for a
// sharded front end: shard i keeps its own index and profile store and
// listens on port+i; state, when enabled, lives in per-shard
// subdirectories shard-0 ... shard-N-1.
//
// With -replicas R (R > 1) every shard is hosted R times: shard s
// replica r is an independent cloud server (own index, own profile
// store) listening on port+s*R+r, the topology a replicated front end
// (pisd-frontend -replicas R) groups into failover replica groups. State
// nests per replica (shard-0-replica-0, ...).
//
// With -obs ADDR, an observability HTTP endpoint serves a JSON metrics
// snapshot at /metrics (per-tier counters and latency histograms) and the
// standard runtime profiles under /debug/pprof/. The endpoint exposes
// operation counts and timings only — no key material or plaintext ever
// reaches this process, so there is nothing secret to leak.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"pisd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pisd-server:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address (shard i listens on port+i)")
	stateDir := flag.String("state", "", "state directory for persistence (empty: in-memory only)")
	segments := flag.String("segments", "", "segment directory built by pisd-segbuild to serve as the static index (single shard only)")
	shards := flag.Int("shards", 1, "number of cloud shards hosted by this process")
	replicas := flag.Int("replicas", 1, "replicas per shard hosted by this process (shard s replica r listens on port+s*R+r)")
	workers := flag.Int("workers", 0, "concurrent pipelined requests served per connection (0: server default)")
	obsAddr := flag.String("obs", "", "observability HTTP address for /metrics and /debug/pprof (empty: disabled)")
	flag.Parse()

	if *shards < 1 {
		return fmt.Errorf("shards must be >= 1, got %d", *shards)
	}
	if *replicas < 1 {
		return fmt.Errorf("replicas must be >= 1, got %d", *replicas)
	}
	if *segments != "" && (*shards > 1 || *replicas > 1) {
		return fmt.Errorf("-segments serves one store and needs -shards 1 -replicas 1")
	}
	if *obsAddr != "" {
		bound, err := pisd.ServeMetrics(pisd.Metrics, *obsAddr)
		if err != nil {
			return fmt.Errorf("observability endpoint: %w", err)
		}
		fmt.Printf("observability endpoint on http://%s (/metrics, /debug/pprof/)\n", bound)
	}
	host, portStr, err := net.SplitHostPort(*addr)
	if err != nil {
		return fmt.Errorf("parse addr: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("parse port: %w", err)
	}
	if port == 0 && (*shards > 1 || *replicas > 1) {
		return fmt.Errorf("a fixed base port is required with -shards or -replicas > 1")
	}

	n := *shards * *replicas
	clouds := make([]*pisd.Cloud, n)
	servers := make([]*pisd.CloudServer, n)
	for i := range clouds {
		s, r := i / *replicas, i%*replicas
		cs := pisd.NewCloud()
		if *stateDir != "" {
			dir := shardStateDir(*stateDir, *shards, *replicas, s, r)
			if err := cs.LoadFrom(dir); err != nil {
				return fmt.Errorf("shard %d replica %d: load state: %w", s, r, err)
			}
			fmt.Printf("shard %d replica %d: loaded state from %s (%d profiles)\n", s, r, dir, cs.NumProfiles())
		}
		if *segments != "" {
			st, err := pisd.OpenSegmentStore(*segments)
			if err != nil {
				return fmt.Errorf("open segment store: %w", err)
			}
			defer st.Close()
			st.SetRegistry(pisd.Metrics)
			cs.SetSegmentStore(st)
			fmt.Printf("serving segmented index from %s (%d segments, %.1f MB)\n",
				*segments, len(st.Segments()), float64(st.Bytes())/(1<<20))
		}
		server := pisd.NewCloudServer(cs)
		if *workers > 0 {
			server.SetWorkersPerConn(*workers)
		}
		nodeAddr := net.JoinHostPort(host, strconv.Itoa(port))
		if port != 0 {
			nodeAddr = net.JoinHostPort(host, strconv.Itoa(port+i))
		}
		bound, err := server.Listen(nodeAddr)
		if err != nil {
			return fmt.Errorf("shard %d replica %d: %w", s, r, err)
		}
		switch {
		case *replicas > 1:
			fmt.Printf("pisd cloud shard %d/%d replica %d/%d listening on %s (ciphertext only, no keys)\n",
				s, *shards, r, *replicas, bound)
		case *shards > 1:
			fmt.Printf("pisd cloud shard %d/%d listening on %s (ciphertext only, no keys)\n", s, *shards, bound)
		default:
			fmt.Printf("pisd cloud server listening on %s (ciphertext only, no keys)\n", bound)
		}
		clouds[i] = cs
		servers[i] = server
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down ...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, server := range servers {
		if err := server.Shutdown(ctx); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	if *stateDir != "" {
		for i, cs := range clouds {
			s, r := i / *replicas, i%*replicas
			dir := shardStateDir(*stateDir, *shards, *replicas, s, r)
			if err := cs.SaveTo(dir); err != nil {
				return fmt.Errorf("shard %d replica %d: save state: %w", s, r, err)
			}
			fmt.Printf("shard %d replica %d: saved state to %s\n", s, r, dir)
		}
	}
	return nil
}

// shardStateDir keeps the single-node layout unchanged and nests
// per-shard (and, when replicated, per-replica) subdirectories otherwise.
func shardStateDir(base string, shards, replicas, s, r int) string {
	if shards == 1 && replicas == 1 {
		return base
	}
	if replicas == 1 {
		return filepath.Join(base, fmt.Sprintf("shard-%d", s))
	}
	return filepath.Join(base, fmt.Sprintf("shard-%d-replica-%d", s, r))
}
