// Command pisd-server runs the untrusted cloud server CS: a TCP service
// storing encrypted images, encrypted profiles and the secure index, and
// answering SecRec discovery requests and dynamic bucket updates. It holds
// no key material.
//
//	pisd-server -addr 127.0.0.1:7001 [-state /var/lib/pisd]
//
// With -state, the server loads its ciphertext state (index, encrypted
// profiles, encrypted images) from the directory at startup and saves it
// back on shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pisd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pisd-server:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	stateDir := flag.String("state", "", "state directory for persistence (empty: in-memory only)")
	flag.Parse()

	cs := pisd.NewCloud()
	if *stateDir != "" {
		if err := cs.LoadFrom(*stateDir); err != nil {
			return fmt.Errorf("load state: %w", err)
		}
		fmt.Printf("loaded state from %s (%d profiles)\n", *stateDir, cs.NumProfiles())
	}
	server := pisd.NewCloudServer(cs)
	bound, err := server.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("pisd cloud server listening on %s (ciphertext only, no keys)\n", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down ...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		return err
	}
	if *stateDir != "" {
		if err := cs.SaveTo(*stateDir); err != nil {
			return fmt.Errorf("save state: %w", err)
		}
		fmt.Printf("saved state to %s\n", *stateDir)
	}
	return nil
}
