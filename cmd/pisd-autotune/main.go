// Command pisd-autotune regenerates the recall-vs-cost frontier: it sweeps
// LSH parameter candidates (l tables, k atoms, width W, probe range d,
// population partitions) over a seeded synthetic population against the
// brute-force oracle, then rebuilds the Pareto survivors on the real
// secure stack to measure recall, bucket traffic, trapdoor cost, index
// bytes and qps in real units.
//
//	pisd-autotune -users 100000 -out autotune_frontier.json
//	pisd-autotune -users 2000 -dim 128 -grid tiny -queries 24   # CI smoke
//
// The winner — the cheapest config holding measured secure recall within
// -max-recall-loss of the untuned reference — is what
// frontend.ConfigForPopulation hard-codes per population tier; rerun this
// tool and update the tuned table there when the population model or the
// scheme changes. Every run is reproducible from -seed; failing configs
// print a one-line repro.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pisd/internal/autotune"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pisd-autotune:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("pisd-autotune", flag.ContinueOnError)
	var (
		users   = fs.Int("users", 10000, "population size to tune for")
		dim     = fs.Int("dim", 1000, "profile dimensionality")
		k       = fs.Int("k", 10, "recall@k cutoff")
		queries = fs.Int("queries", 64, "evaluation query count")
		seed    = fs.Int64("seed", 1, "run seed (population, families, workload)")
		workers = fs.Int("workers", 0, "sweep parallelism (0: GOMAXPROCS)")
		loss    = fs.Float64("max-recall-loss", 0.01, "recall the winner may give up vs the reference")
		grid    = fs.String("grid", "default", "candidate grid: default, tiny, or 'l=6,atoms=5,width=0.85,d=4,parts=1;...'")
		measure = fs.Bool("measure", true, "rebuild reference+frontier on the secure stack (real-unit costs)")
		outFile = fs.String("out", "", "write the full report JSON to this file")
		quiet   = fs.Bool("quiet", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cands, err := parseGrid(*grid, *users)
	if err != nil {
		return err
	}
	cfg := autotune.Config{
		Users:         *users,
		Dim:           *dim,
		K:             *k,
		Queries:       *queries,
		Seed:          *seed,
		Workers:       *workers,
		MaxRecallLoss: *loss,
		Grid:          cands,
		Measure:       *measure,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		}
	}
	rep, err := autotune.Run(cfg)
	if err != nil {
		return err
	}
	printReport(out, rep)

	if *outFile != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outFile, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote report to %s\n", *outFile)
	}
	if rep.Winner == nil {
		return fmt.Errorf("no candidate held recall within %.3f of the reference", cfg.MaxRecallLoss)
	}
	return nil
}

// parseGrid resolves a preset name or parses a semicolon-separated custom
// candidate list.
func parseGrid(spec string, users int) ([]autotune.Candidate, error) {
	switch spec {
	case "default":
		return autotune.DefaultGrid(users), nil
	case "tiny":
		return autotune.TinyGrid(users), nil
	}
	var out []autotune.Candidate
	for _, one := range strings.Split(spec, ";") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		c := autotune.Candidate{Partitions: 1, ProbeRange: 4}
		for _, kv := range strings.Split(one, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("grid entry %q: want key=value, got %q", one, kv)
			}
			switch key {
			case "l":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("grid entry %q: l: %w", one, err)
				}
				c.Tables = n
			case "atoms", "k":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("grid entry %q: atoms: %w", one, err)
				}
				c.Atoms = n
			case "width", "W", "w":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("grid entry %q: width: %w", one, err)
				}
				c.Width = f
			case "d", "probe_range":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("grid entry %q: d: %w", one, err)
				}
				c.ProbeRange = n
			case "parts", "partitions":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("grid entry %q: parts: %w", one, err)
				}
				c.Partitions = n
			default:
				return nil, fmt.Errorf("grid entry %q: unknown key %q", one, key)
			}
		}
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("grid entry %q: %w", one, err)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("grid %q: no candidates", spec)
	}
	return out, nil
}

// printReport renders the frontier and winner as a table.
func printReport(out *os.File, rep *autotune.Report) {
	fmt.Fprintf(out, "\nreference %s: budget %d, proxy recall %.4f", rep.Reference.Candidate,
		rep.Reference.Budget, rep.Reference.Recall)
	if m := rep.Reference.Measured; m != nil {
		fmt.Fprintf(out, ", secure recall %.4f, %.0f buckets/q, %.1f µs trapdoor, %.1f MB index, %.0f qps",
			m.Recall, m.BucketsPerQuery, m.TrapdoorUS, float64(m.IndexBytes)/(1<<20), m.QPS)
	}
	fmt.Fprintf(out, "\n\n%-28s %6s %8s %8s %9s", "frontier config", "budget", "recall", "accuracy", "cands/q")
	fmt.Fprintf(out, " %10s %9s %8s %9s %7s\n", "sec-recall", "buckets/q", "tpdr-µs", "index-MB", "qps")
	for _, r := range rep.Frontier {
		fmt.Fprintf(out, "%-28s %6d %8.4f %8.4f %9.1f", r.Candidate.String(), r.Budget, r.Recall, r.Accuracy, r.Candidates)
		if r.Measured != nil {
			m := r.Measured
			fmt.Fprintf(out, " %10.4f %9.1f %8.1f %9.2f %7.0f", m.Recall, m.BucketsPerQuery,
				m.TrapdoorUS, float64(m.IndexBytes)/(1<<20), m.QPS)
		} else if r.Err != "" {
			fmt.Fprintf(out, "  INFEASIBLE: %s", r.Err)
		}
		fmt.Fprintln(out)
		if r.Repro != "" {
			fmt.Fprintf(out, "  %s\n", r.Repro)
		}
	}
	if rep.Winner != nil {
		fmt.Fprintf(out, "\nwinner: %s — budget %d vs %d (−%.0f%%)\n",
			rep.Winner.Candidate, rep.Winner.Budget, rep.Reference.Budget, 100*rep.BudgetReduction)
	}
}
