// Command pisd-segbuild builds the secure index as a segmented on-disk
// store, streaming the population through the front end in bounded
// batches: each batch of uploads is hashed, placed, encrypted and spilled
// as one segment file, and its plaintext profiles are discarded before the
// next batch is generated. Peak memory is the cuckoo placement plus one
// batch — never the full population — which is what makes million-profile
// builds fit on one machine.
//
//	pisd-segbuild -users 100000 -out /var/lib/pisd/segments -keys sf.keys
//	pisd-server -segments /var/lib/pisd/segments &
//	pisd-frontend -attach -users 100000 -keys sf.keys -discover 1,2
//
// After the stream, small generation-0 segments are compacted into larger
// generations (disable with -fanout 0). With -state, the encrypted
// profiles are also written as a cloud state directory so a server can
// answer full discoveries. With -verify, the monolithic in-RAM index is
// built from the same metadata and every sampled query must return
// byte-identical identifiers — the equivalence check CI runs at scale.
//
// The tool reports build wall time, on-disk index size, sampled SecRec
// latency and peak RSS (VmHWM), optionally as a JSON record via -bench;
// -rss-budget-mb turns the RSS figure into a hard failure for CI.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"pisd"
	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/segstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pisd-segbuild:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "", "segment directory (required, created if absent)")
		stateDir  = flag.String("state", "", "also write a cloud state directory with the encrypted profiles")
		keysFile  = flag.String("keys", "", "key file: loaded if present, written after fresh key generation (keep it secret)")
		users     = flag.Int("users", 100000, "population size")
		dim       = flag.Int("dim", 500, "profile dimensionality")
		topics    = flag.Int("topics", 0, "interest topics in the population (0: scale with population size)")
		seed      = flag.Int64("seed", 1, "population seed")
		batch     = flag.Int("batch", 20000, "uploads per segment")
		fanout    = flag.Int("fanout", 4, "segments merged per compaction (0: keep generation-0 segments)")
		target    = flag.Int("compact-target", 1, "stop compacting at this many segments")
		workers   = flag.Int("compact-workers", 1, "concurrent segment merges")
		queries   = flag.Int("queries", 32, "SecRec latency sample size (0: skip)")
		verify    = flag.Bool("verify", false, "build the monolithic index too and require identical SecRec answers")
		benchFile = flag.String("bench", "", "write a JSON benchmark record to this file")
		metFile   = flag.String("metrics", "", "write a flattened metrics snapshot (JSON) to this file")
		rssBudget = flag.Int("rss-budget-mb", 0, "fail if peak RSS exceeds this many MB (0: no budget)")
	)
	flag.Parse()
	if *out == "" {
		return errors.New("-out is required")
	}
	if *batch < 1 {
		return fmt.Errorf("batch must be >= 1, got %d", *batch)
	}

	// The atom count must be derived from -users exactly as
	// pisd-frontend -attach derives it, or attached trapdoors would
	// address a different hash family than the one the index was built
	// under.
	cfg := pisd.FrontendConfigForPopulation(*dim, *users)
	sf, err := loadOrCreateFrontend(cfg, *keysFile)
	if err != nil {
		return err
	}
	if *topics == 0 {
		*topics = dataset.AutoTopics(*users)
	}
	// Keep this config literal in sync with pisd-frontend: its -attach
	// mode regenerates the population deterministically from the same
	// flags and must get the same profiles.
	it, err := dataset.NewIterator(dataset.Config{
		Users: *users, Dim: *dim, Topics: *topics, TopicsPerUser: 2,
		ActiveWords: *dim / 12, Noise: 0.02, PersonalWeight: 0.6, Seed: *seed,
	})
	if err != nil {
		return err
	}
	sb, err := sf.NewSegmentBuilder(*users, *out)
	if err != nil {
		return err
	}

	var state *pisd.Cloud
	if *stateDir != "" {
		state = pisd.NewCloud()
	}
	// Sampled metadata for the latency probe; full items only under
	// -verify (they are what the monolithic comparison index is built of).
	stride := 0
	if *queries > 0 {
		stride = max(1, *users / *queries)
	}
	var sampleIDs []uint64
	var sampleMetas []pisd.Metadata
	var verifyItems []core.Item

	buildStart := time.Now()
	placed := 0
	for {
		chunk, ok := it.NextChunk(*batch)
		if !ok {
			break
		}
		uploads := make([]pisd.Upload, len(chunk.Profiles))
		for i, p := range chunk.Profiles {
			id := uint64(chunk.Start + i + 1)
			meta := sf.ComputeMeta(p)
			uploads[i] = pisd.Upload{ID: id, Profile: p, Meta: meta}
			if stride > 0 && (chunk.Start+i)%stride == 0 && len(sampleIDs) < *queries {
				sampleIDs = append(sampleIDs, id)
				sampleMetas = append(sampleMetas, meta)
			}
			if *verify {
				verifyItems = append(verifyItems, core.Item{ID: id, Meta: meta})
			}
		}
		cts, err := sb.AddUploads(uploads)
		if err != nil {
			return err
		}
		if state != nil {
			for i, ct := range cts {
				state.PutProfile(uploads[i].ID, ct)
			}
		}
		placed += len(uploads)
		if placed%(*batch*10) == 0 || placed == *users {
			fmt.Printf("placed %d/%d users\n", placed, *users)
		}
	}
	paths, err := sb.Finish()
	if err != nil {
		return err
	}
	buildTime := time.Since(buildStart)

	st, err := segstore.Open(*out)
	if err != nil {
		return err
	}
	defer st.Close()
	st.SetRegistry(pisd.Metrics)
	segsInitial := len(paths)
	fmt.Printf("streamed %d users into %d segments in %s (%.1f MB on disk)\n",
		placed, segsInitial, buildTime.Round(time.Millisecond), float64(st.Bytes())/(1<<20))

	var compactTime time.Duration
	if *fanout > 0 && len(st.Segments()) > *target {
		c := segstore.NewCompactor(st, sb.Placement(), segstore.CompactorConfig{
			Fanout: *fanout, Target: *target, Concurrency: *workers,
		})
		compactStart := time.Now()
		if err := c.Run(); err != nil {
			return fmt.Errorf("compact: %w", err)
		}
		compactTime = time.Since(compactStart)
		fmt.Printf("compacted to %d segments in %s\n",
			len(st.Segments()), compactTime.Round(time.Millisecond))
	}

	p50, p99, err := probeLatency(sf, st, sampleMetas)
	if err != nil {
		return err
	}
	if len(sampleMetas) > 0 {
		fmt.Printf("SecRec over %d sampled queries: p50 %s, p99 %s\n",
			len(sampleMetas), p50.Round(time.Microsecond), p99.Round(time.Microsecond))
	}

	if *verify {
		if err := verifyAgainstMonolithic(sf, st, verifyItems, sampleMetas); err != nil {
			return err
		}
		fmt.Printf("verified: segmented SecRec identical to monolithic for all %d sampled queries\n",
			len(sampleMetas))
	}

	if state != nil {
		if err := state.SaveTo(*stateDir); err != nil {
			return fmt.Errorf("save state: %w", err)
		}
		fmt.Printf("saved %d encrypted profiles to %s\n", state.NumProfiles(), *stateDir)
	}
	if *metFile != "" {
		blob, err := json.MarshalIndent(pisd.Metrics.Snapshot().Flatten(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*metFile, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	rssMB := peakRSSMB()
	fmt.Printf("peak RSS %d MB\n", rssMB)
	if *benchFile != "" {
		record := map[string]any{
			"schema":           "pisd-bench-v1",
			"bench":            "segmented_build",
			"users":            *users,
			"dim":              *dim,
			"batch":            *batch,
			"segments_initial": segsInitial,
			"segments_final":   len(st.Segments()),
			"index_bytes":      st.Bytes(),
			"build_s":          buildTime.Seconds(),
			"compact_s":        compactTime.Seconds(),
			"secrec_p50_us":    p50.Microseconds(),
			"secrec_p99_us":    p99.Microseconds(),
			"peak_rss_mb":      rssMB,
			"verified":         *verify,
		}
		blob, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchFile, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote benchmark record to %s\n", *benchFile)
	}
	if *rssBudget > 0 && rssMB > *rssBudget {
		return fmt.Errorf("peak RSS %d MB exceeds budget of %d MB", rssMB, *rssBudget)
	}
	return nil
}

// loadOrCreateFrontend is the same keys-file contract as pisd-frontend:
// load the key blob if the file exists, otherwise generate fresh keys and
// persist them (mode 0600) so a later -attach run can reuse them.
func loadOrCreateFrontend(cfg pisd.FrontendConfig, keysFile string) (*pisd.Frontend, error) {
	if keysFile != "" {
		if blob, err := os.ReadFile(keysFile); err == nil {
			sf, err := frontend.NewWithKeys(cfg, blob)
			if err != nil {
				return nil, fmt.Errorf("restore keys from %s: %w", keysFile, err)
			}
			fmt.Printf("restored keys from %s\n", keysFile)
			return sf, nil
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
	}
	sf, err := pisd.NewFrontend(cfg)
	if err != nil {
		return nil, err
	}
	if keysFile != "" {
		blob, err := sf.ExportKeys()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(keysFile, blob, 0o600); err != nil {
			return nil, fmt.Errorf("persist keys: %w", err)
		}
		fmt.Printf("generated fresh keys and saved them to %s\n", keysFile)
	}
	return sf, nil
}

// probeLatency times one SecRec per sampled metadata against the store.
func probeLatency(sf *pisd.Frontend, st *segstore.Store, metas []pisd.Metadata) (p50, p99 time.Duration, err error) {
	if len(metas) == 0 {
		return 0, 0, nil
	}
	lats := make([]time.Duration, len(metas))
	for i, meta := range metas {
		td, err := sf.TrapdoorForMeta(meta)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if _, err := st.SecRec(td); err != nil {
			return 0, 0, err
		}
		lats[i] = time.Since(start)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)/2], lats[min(len(lats)*99/100, len(lats)-1)], nil
}

// verifyAgainstMonolithic rebuilds the one-shot in-RAM index from the
// retained metadata (same keys, same parameters) and requires every
// sampled query to return the identical identifier sequence from both
// backends.
func verifyAgainstMonolithic(sf *pisd.Frontend, st *segstore.Store, items []core.Item, metas []pisd.Metadata) error {
	blob, err := sf.ExportKeys()
	if err != nil {
		return err
	}
	keys := &crypt.KeySet{}
	if err := keys.UnmarshalBinary(blob); err != nil {
		return err
	}
	p, err := sf.IndexParams()
	if err != nil {
		return err
	}
	idx, err := core.Build(keys, items, p)
	if err != nil {
		return fmt.Errorf("monolithic comparison build: %w", err)
	}
	for q, meta := range metas {
		td, err := sf.TrapdoorForMeta(meta)
		if err != nil {
			return err
		}
		want, err := idx.SecRec(td)
		if err != nil {
			return err
		}
		got, err := st.SecRec(td)
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			return fmt.Errorf("verify: query %d: %d ids segmented, %d monolithic", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("verify: query %d: id %d differs (%d vs %d)", q, i, got[i], want[i])
			}
		}
	}
	return nil
}

// peakRSSMB reads VmHWM (peak resident set) from /proc/self/status,
// returning 0 where unavailable (non-Linux).
func peakRSSMB() int {
	blob, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(blob), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
