package main

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"pisd"
	"pisd/internal/dataset"
)

// runDynamic is the updatable-index deployment path (-dynamic): the
// population is built into sharded dynamic indexes (optionally replicated
// — the -cloud list is grouped into runs of -replicas addresses), served
// through the cached dynamic serving path, and optionally subjected to a
// standing-query workload: -subscribe N registers N top-k subscriptions,
// -churn M drives M insert/delete operations, and every standing-result
// change streams as one line (and, with -notify-out, as one wire frame of
// the subscription codec) as it happens.
func runDynamic(sf *pisd.Frontend, ds *dataset.Dataset, addrs []string, users, k int, discover string, opts dynOptions) error {
	partitions := len(addrs) / opts.replicas
	uploads := make([]pisd.Upload, users)
	for i := 0; i < users; i++ {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: ds.Profiles[i], Meta: sf.ComputeMeta(ds.Profiles[i])}
	}

	buildStart := time.Now()
	built, err := sf.BuildShardedDynamicIndex(uploads, partitions, nil)
	if err != nil {
		return err
	}
	fmt.Printf("built %d-shard dynamic index over %d users in %s\n",
		partitions, users, time.Since(buildStart).Round(time.Millisecond))

	remotes := make([]*pisd.RemoteShard, len(addrs))
	for i, addr := range addrs {
		r := pisd.NewRemoteShard(addr)
		r.SetConns(opts.conns)
		defer r.Close()
		remotes[i] = r
	}
	nodes := make([]pisd.DynNode, partitions)
	if opts.replicas == 1 {
		for s, r := range remotes {
			nodes[s] = r
			if err := r.InstallDynIndex(built[s].Index); err != nil {
				return fmt.Errorf("install dynamic index on shard %d: %w", s, err)
			}
			if err := r.PutProfiles(built[s].EncProfiles); err != nil {
				return err
			}
		}
	} else {
		for s := 0; s < partitions; s++ {
			members := make([]pisd.ReplicaNode, opts.replicas)
			for r := 0; r < opts.replicas; r++ {
				members[r] = remotes[s*opts.replicas+r]
			}
			g, err := pisd.NewReplicaGroup(s, pisd.ReplicaGroupConfig{}, members...)
			if err != nil {
				return err
			}
			if err := g.InstallDynIndex(built[s].Index); err != nil {
				return fmt.Errorf("install dynamic index on group %d: %w", s, err)
			}
			if err := g.PutProfiles(built[s].EncProfiles); err != nil {
				return err
			}
			nodes[s] = g
		}
		fmt.Printf("replicated dynamic fleet: %d partitions x %d replicas\n", partitions, opts.replicas)
	}
	for s := range built {
		fmt.Printf("shard %d: outsourced dynamic index and %d encrypted profiles to %s\n",
			s, len(built[s].EncProfiles), strings.Join(addrs[s*opts.replicas:(s+1)*opts.replicas], ","))
	}

	serving, err := sf.NewDynServing(built, nodes, nil, opts.serving)
	if err != nil {
		return err
	}

	// The notification stream: every standing-result change is printed as
	// it happens and, with -notify-out, round-tripped through the
	// subscription wire codec and appended to the frame file a pisd-client
	// -notifications invocation decodes.
	var notifyOut *os.File
	if opts.notifyOut != "" {
		notifyOut, err = os.Create(opts.notifyOut)
		if err != nil {
			return fmt.Errorf("notification frame file: %w", err)
		}
		defer notifyOut.Close()
	}
	notified := 0
	mgr := serving.AttachSubscriptions(func(n pisd.SubscriptionNotification) {
		notified++
		kind := "entered"
		if n.Promoted {
			kind = "promoted"
		}
		evict := ""
		if n.EvictedID != 0 {
			evict = fmt.Sprintf(" evicting user %d", n.EvictedID)
		}
		fmt.Printf("  notify[seq %d] sub %d: user %d %s at distance %.4f%s\n",
			n.Seq, n.SubID, n.ID, kind, n.Distance, evict)
		if notifyOut != nil {
			frame := pisd.EncodeSubscriptionNotification(n)
			if _, err := notifyOut.Write(frame); err != nil {
				fmt.Fprintln(os.Stderr, "pisd-frontend: write notification frame:", err)
			}
		}
	})

	// Register the standing queries: users 1..N from flags, plus any
	// client-encoded registration frames handed over via -subscribe-frames.
	registered := 0
	for i := 1; i <= opts.subscribe; i++ {
		entries, err := serving.Subscribe(uint64(i), ds.Profiles[i-1], k)
		if err != nil {
			return fmt.Errorf("subscribe user %d: %w", i, err)
		}
		registered++
		if i <= 3 {
			fmt.Printf("subscription %d: standing top-%d seeded with %d entries\n", i, k, len(entries))
		}
	}
	if opts.subscribeFrames != "" {
		n, err := subscribeFromFrames(serving, opts.subscribeFrames, len(ds.Profiles[0]))
		if err != nil {
			return err
		}
		registered += n
		fmt.Printf("registered %d subscription(s) from client frames in %s\n", n, opts.subscribeFrames)
	}
	if registered > 0 {
		fmt.Printf("%d standing quer%s registered\n", registered, plural(registered, "y", "ies"))
	}

	// The churn wave: fresh users inserted from the spare profile pool,
	// every fourth operation also deleting an earlier insert, so the
	// stream shows entries, evictions and promotions.
	if opts.churn > 0 {
		fmt.Printf("\nchurn wave: %d operations\n", opts.churn)
		churnStart := time.Now()
		var inserted []uint64
		deletes := 0
		for j := 0; j < opts.churn; j++ {
			id := uint64(users + j + 1)
			profile := ds.Profiles[users+j]
			if err := serving.Insert(id, profile); err != nil {
				return fmt.Errorf("churn insert %d: %w", id, err)
			}
			inserted = append(inserted, id)
			if j%4 == 3 {
				victim := inserted[0]
				inserted = inserted[1:]
				if err := serving.Delete(victim, ds.Profiles[victim-1]); err != nil {
					return fmt.Errorf("churn delete %d: %w", victim, err)
				}
				deletes++
			}
		}
		fmt.Printf("churn wave done in %s: %d inserts, %d deletes, %d notifications\n",
			time.Since(churnStart).Round(time.Millisecond), opts.churn, deletes, notified)
	}

	if registered > 0 {
		fmt.Println("\nfinal standing results:")
		shown := 0
		for i := 1; shown < 3 && i <= opts.subscribe; i++ {
			entries, ok := mgr.TopK(uint64(i))
			if !ok {
				continue
			}
			shown++
			fmt.Printf("  sub %d:", i)
			for _, e := range entries {
				fmt.Printf(" user %d (%.4f)", e.ID, e.Distance)
			}
			fmt.Println()
		}
	}

	// A discovery wave through the same cached dynamic path.
	targets, err := parseTargets(discover, users)
	if err != nil {
		return err
	}
	for _, id := range targets {
		qs := time.Now()
		matches, partial, err := serving.Search(ds.Profiles[id-1], k, id)
		if err != nil {
			return fmt.Errorf("dynamic search for user %d: %w", id, err)
		}
		note := ""
		if partial {
			note = " [PARTIAL: one or more shards unreachable]"
		}
		fmt.Printf("\nuser %d (topics %v) in %s%s:\n",
			id, ds.UserTopics[id-1], time.Since(qs).Round(time.Microsecond), note)
		printMatches(ds, matches)
	}

	var sent, recv int64
	for _, r := range remotes {
		s, rv := r.Traffic()
		sent += s
		recv += rv
	}
	fmt.Printf("\ntotal traffic: %.1f KB sent, %.1f KB received across %d cloud server(s)\n",
		float64(sent)/1024, float64(recv)/1024, len(addrs))
	return nil
}

// subscribeFromFrames decodes client-encoded registration frames (the
// subscription wire codec) and registers each as a standing query. The
// file is the output of pisd-client -subscribe-out.
func subscribeFromFrames(serving *pisd.DynServing, path string, dim int) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	n := 0
	for len(data) > 0 {
		frame, consumed, err := pisd.DecodeSubscriptionFrame(data)
		if err != nil {
			return n, fmt.Errorf("decode registration frame %d in %s: %w", n, path, err)
		}
		data = data[consumed:]
		r := frame.Registration
		if r == nil {
			return n, fmt.Errorf("frame %d in %s is not a registration", n, path)
		}
		if len(r.Profile) != dim {
			return n, fmt.Errorf("registration %d carries a %d-dim profile, index expects %d",
				r.SubID, len(r.Profile), dim)
		}
		if _, err := serving.Subscribe(r.SubID, r.Profile, r.K); err != nil {
			return n, fmt.Errorf("register client subscription %d: %w", r.SubID, err)
		}
		n++
	}
	if n == 0 {
		return 0, errors.New("no registration frames in " + path)
	}
	return n, nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// dynOptions bundles the -dynamic deployment's flag values.
type dynOptions struct {
	subscribe       int
	subscribeFrames string
	churn           int
	notifyOut       string
	conns           int
	replicas        int
	serving         pisd.ServingConfig
}
