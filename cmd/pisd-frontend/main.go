// Command pisd-frontend runs the trusted service front end SF against a
// remote cloud server: it generates (or accepts) a user population, builds
// the secure index, outsources it with the encrypted profiles over TCP,
// and runs privacy-preserving discoveries.
//
//	pisd-server &                                  # terminal 1
//	pisd-frontend -cloud 127.0.0.1:7001 -users 5000 -discover 1,2,3
//
// Passing a comma-separated -cloud list selects the sharded deployment:
// users are partitioned across the servers (id mod S), one projected
// secure index is installed per shard, and every discovery fans out to all
// shards in parallel. Results that could not reach every shard are marked
// partial.
//
//	pisd-server -addr 127.0.0.1:7001 -shards 4 &   # terminal 1
//	pisd-frontend -cloud 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004
//
// With -attach, the front end skips building entirely and attaches to a
// segmented index that pisd-segbuild streamed to disk earlier: it restores
// the keys from the (required) -keys file, re-derives the index parameters
// from the population size, and goes straight to discovery against a
// server started with -segments. -users and -keys must match the build.
//
//	pisd-segbuild -users 20000 -out segs -state state -keys sf.keys
//	pisd-server -segments segs -state state &
//	pisd-frontend -attach -users 20000 -keys sf.keys -discover 1,2
//
// With -obs ADDR, an observability HTTP endpoint serves a JSON metrics
// snapshot at /metrics — frontend per-stage latency, per-shard fan-out
// health, transport traffic — plus /debug/pprof/; the process then stays
// alive after the discoveries until interrupted, so the endpoint can be
// scraped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pisd"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pisd-frontend:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cloudAddr = flag.String("cloud", "127.0.0.1:7001", "cloud server address")
		keysFile  = flag.String("keys", "", "key file: loaded if present, written after fresh key generation (keep it secret)")
		users     = flag.Int("users", 5000, "population size")
		dim       = flag.Int("dim", 500, "profile dimensionality")
		topics    = flag.Int("topics", 0, "interest topics in the population (0: scale with population size)")
		k         = flag.Int("k", 5, "recommendations per discovery")
		discover  = flag.String("discover", "1", "comma-separated target user ids")
		attach    = flag.Bool("attach", false, "attach to a pisd-segbuild index instead of building (requires the build's -keys file and -users)")
		seed      = flag.Int64("seed", 1, "population seed")
		obsAddr   = flag.String("obs", "", "observability HTTP address for /metrics and /debug/pprof; keeps the process alive until interrupted (empty: disabled)")
	)
	flag.Parse()

	if *obsAddr != "" {
		bound, err := pisd.ServeMetrics(pisd.Metrics, *obsAddr)
		if err != nil {
			return fmt.Errorf("observability endpoint: %w", err)
		}
		fmt.Printf("observability endpoint on http://%s (/metrics, /debug/pprof/)\n", bound)
	}

	if *topics == 0 {
		*topics = dataset.AutoTopics(*users)
	}
	// This config literal is shared verbatim with pisd-segbuild: -attach
	// regenerates the population deterministically, so the two tools must
	// agree on it for the same flags.
	ds, err := dataset.Generate(dataset.Config{
		Users: *users, Dim: *dim, Topics: *topics, TopicsPerUser: 2,
		ActiveWords: *dim / 12, Noise: 0.02, PersonalWeight: 0.6, Seed: *seed,
	})
	if err != nil {
		return err
	}

	// Derive the LSH atom count from -users the same way pisd-segbuild
	// does, so -attach computes trapdoors under the hash family the
	// segmented index was built with.
	cfg := pisd.FrontendConfigForPopulation(*dim, *users)
	var sf *pisd.Frontend
	if *keysFile != "" {
		if blob, err := os.ReadFile(*keysFile); err == nil {
			sf, err = frontend.NewWithKeys(cfg, blob)
			if err != nil {
				return fmt.Errorf("restore keys from %s: %w", *keysFile, err)
			}
			fmt.Printf("restored keys from %s\n", *keysFile)
		} else if !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	if *attach && sf == nil {
		return errors.New("-attach requires -keys pointing at the key file pisd-segbuild wrote")
	}
	if sf == nil {
		var err error
		sf, err = pisd.NewFrontend(cfg)
		if err != nil {
			return err
		}
		if *keysFile != "" {
			blob, err := sf.ExportKeys()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*keysFile, blob, 0o600); err != nil {
				return fmt.Errorf("persist keys: %w", err)
			}
			fmt.Printf("generated fresh keys and saved them to %s\n", *keysFile)
		}
	}
	var uploads []pisd.Upload
	if !*attach {
		// Attach mode issues trapdoors only; no uploads are (re)hashed.
		uploads = make([]pisd.Upload, len(ds.Profiles))
		for i, p := range ds.Profiles {
			uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
		}
	}

	addrs := splitList(*cloudAddr)
	if len(addrs) == 0 {
		return errors.New("no cloud address given")
	}
	if len(addrs) > 1 {
		if *attach {
			return errors.New("-attach supports a single cloud server")
		}
		if err := runSharded(sf, ds, uploads, addrs, *k, *discover); err != nil {
			return err
		}
		return lingerIfObs(*obsAddr)
	}

	client, err := pisd.DialCloud(addrs[0])
	if err != nil {
		return err
	}
	defer client.Close()

	if *attach {
		if err := sf.AttachSegmented(*users); err != nil {
			return err
		}
		fmt.Printf("attached to segmented index over %d users at %s\n", *users, addrs[0])
	} else {
		buildStart := time.Now()
		idx, encProfiles, err := sf.BuildIndex(uploads)
		if err != nil {
			return err
		}
		fmt.Printf("built secure index over %d users in %s (%.1f MB)\n",
			len(uploads), time.Since(buildStart).Round(time.Millisecond),
			float64(idx.SizeBytes())/(1<<20))
		if err := client.InstallIndex(idx); err != nil {
			return err
		}
		if err := client.PutProfiles(encProfiles); err != nil {
			return err
		}
		fmt.Printf("outsourced index and %d encrypted profiles to %s\n", len(encProfiles), *cloudAddr)
	}

	targets, err := parseTargets(*discover, len(ds.Profiles))
	if err != nil {
		return err
	}
	if len(targets) > 1 {
		// Several targets: amortize the round trip over one batched exchange.
		profiles, excludes := targetProfiles(ds, targets)
		start := time.Now()
		batches, err := sf.DiscoverBatch(client, profiles, *k, excludes)
		if err != nil {
			return err
		}
		fmt.Printf("\nbatched discovery for %d users took %s:\n",
			len(targets), time.Since(start).Round(time.Microsecond))
		for i, id := range targets {
			fmt.Printf("\nuser %d (topics %v):\n", id, ds.UserTopics[id-1])
			printMatches(ds, batches[i])
		}
	} else {
		for _, id := range targets {
			start := time.Now()
			matches, err := sf.Discover(client, ds.Profiles[id-1], *k, id)
			if err != nil {
				return err
			}
			fmt.Printf("\ndiscovery for user %d (topics %v) took %s:\n",
				id, ds.UserTopics[id-1], time.Since(start).Round(time.Microsecond))
			printMatches(ds, matches)
		}
	}
	sent, recv := client.Traffic()
	fmt.Printf("\ntotal traffic: %.1f KB sent, %.1f KB received\n",
		float64(sent)/1024, float64(recv)/1024)
	return lingerIfObs(*obsAddr)
}

// lingerIfObs keeps the process alive until interrupted when the
// observability endpoint is enabled, so /metrics stays scrapeable after
// the discoveries complete (the CI smoke step depends on this).
func lingerIfObs(obsAddr string) error {
	if obsAddr == "" {
		return nil
	}
	fmt.Println("\nobservability endpoint active; press Ctrl-C to exit")
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	return nil
}

// runSharded is the multi-shard deployment path: one projected index per
// cloud server, discoveries fanned out to all shards in parallel.
func runSharded(sf *pisd.Frontend, ds *dataset.Dataset, uploads []pisd.Upload, addrs []string, k int, discover string) error {
	nodes := make([]pisd.ShardNode, len(addrs))
	remotes := make([]*pisd.RemoteShard, len(addrs))
	for i, addr := range addrs {
		r := pisd.NewRemoteShard(addr)
		defer r.Close()
		remotes[i] = r
		nodes[i] = r
	}
	pool, err := pisd.NewShardPool(pisd.DefaultShardPoolConfig(), nodes...)
	if err != nil {
		return err
	}

	buildStart := time.Now()
	shards, err := sf.BuildShardedIndex(uploads, len(addrs), nil)
	if err != nil {
		return err
	}
	var indexBytes int
	for _, sh := range shards {
		indexBytes += sh.Index.SizeBytes()
	}
	fmt.Printf("built %d-shard secure index over %d users in %s (%.1f MB total)\n",
		len(shards), len(uploads), time.Since(buildStart).Round(time.Millisecond),
		float64(indexBytes)/(1<<20))
	for s, sh := range shards {
		if err := pool.InstallShard(s, sh.Index, sh.EncProfiles); err != nil {
			return err
		}
		fmt.Printf("shard %d: outsourced index and %d encrypted profiles to %s\n",
			s, len(sh.EncProfiles), addrs[s])
	}

	targets, err := parseTargets(discover, len(ds.Profiles))
	if err != nil {
		return err
	}
	if len(targets) > 1 {
		// Several targets: one batched SecRec call per shard for all of them.
		profiles, excludes := targetProfiles(ds, targets)
		start := time.Now()
		batches, partial, err := sf.DiscoverShardedBatch(context.Background(), pool, profiles, k, excludes)
		if err != nil {
			return err
		}
		note := ""
		if partial {
			note = " [PARTIAL: one or more shards unreachable]"
		}
		fmt.Printf("\nbatched fan-out discovery for %d users took %s%s:\n",
			len(targets), time.Since(start).Round(time.Microsecond), note)
		for i, id := range targets {
			fmt.Printf("\nuser %d (topics %v):\n", id, ds.UserTopics[id-1])
			printMatches(ds, batches[i])
		}
	} else {
		for _, id := range targets {
			start := time.Now()
			matches, partial, err := sf.DiscoverSharded(context.Background(), pool, ds.Profiles[id-1], k, id)
			if err != nil {
				return err
			}
			note := ""
			if partial {
				note = " [PARTIAL: one or more shards unreachable]"
			}
			fmt.Printf("\nfan-out discovery for user %d (topics %v) took %s%s:\n",
				id, ds.UserTopics[id-1], time.Since(start).Round(time.Microsecond), note)
			printMatches(ds, matches)
		}
	}
	var sent, recv int64
	for _, r := range remotes {
		s, rv := r.Traffic()
		sent += s
		recv += rv
	}
	fmt.Printf("\ntotal traffic: %.1f KB sent, %.1f KB received across %d shards\n",
		float64(sent)/1024, float64(recv)/1024, len(addrs))
	return nil
}

// targetProfiles collects the profile and self-exclusion id per target.
func targetProfiles(ds *dataset.Dataset, targets []uint64) ([][]float64, []uint64) {
	profiles := make([][]float64, len(targets))
	excludes := make([]uint64, len(targets))
	for i, id := range targets {
		profiles[i] = ds.Profiles[id-1]
		excludes[i] = id
	}
	return profiles, excludes
}

func printMatches(ds *dataset.Dataset, matches []pisd.Match) {
	for rank, m := range matches {
		fmt.Printf("  %d. user %-6d distance %.4f topics %v\n",
			rank+1, m.ID, m.Distance, ds.UserTopics[m.ID-1])
	}
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// parseTargets parses the -discover id list against the population size.
func parseTargets(discover string, n int) ([]uint64, error) {
	var out []uint64
	for _, tok := range splitList(discover) {
		id, err := strconv.ParseUint(tok, 10, 64)
		if err != nil || id == 0 || id > uint64(n) {
			return nil, fmt.Errorf("invalid target user %q", tok)
		}
		out = append(out, id)
	}
	return out, nil
}
