// Command pisd-frontend runs the trusted service front end SF against a
// remote cloud server: it generates (or accepts) a user population, builds
// the secure index, outsources it with the encrypted profiles over TCP,
// and runs privacy-preserving discoveries.
//
//	pisd-server &                                  # terminal 1
//	pisd-frontend -cloud 127.0.0.1:7001 -users 5000 -discover 1,2,3
//
// Passing a comma-separated -cloud list selects the sharded deployment:
// users are partitioned across the servers (id mod S), one projected
// secure index is installed per shard, and every discovery fans out to all
// shards in parallel. Results that could not reach every shard are marked
// partial.
//
//	pisd-server -addr 127.0.0.1:7001 -shards 4 &   # terminal 1
//	pisd-frontend -cloud 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004
//
// With -attach, the front end skips building entirely and attaches to a
// segmented index that pisd-segbuild streamed to disk earlier: it restores
// the keys from the (required) -keys file, re-derives the index parameters
// from the population size, and goes straight to discovery against a
// server started with -segments. -users and -keys must match the build.
//
//	pisd-segbuild -users 20000 -out segs -state state -keys sf.keys
//	pisd-server -segments segs -state state &
//	pisd-frontend -attach -users 20000 -keys sf.keys -discover 1,2
//
// With -obs ADDR, an observability HTTP endpoint serves a JSON metrics
// snapshot at /metrics — frontend per-stage latency, per-shard fan-out
// health, transport traffic — plus /debug/pprof/; the process then stays
// alive after the discoveries until interrupted, so the endpoint can be
// scraped.
//
// With -dynamic (implied by -subscribe or -churn), the front end builds
// the updatable index instead and serves through the cached dynamic path:
// -subscribe N registers N standing top-k queries, -churn M drives M
// insert/delete operations against the live index, and every
// standing-result change streams to stdout as it happens (subs.* metrics
// ride the -obs endpoint). -notify-out FILE additionally appends each
// notification as one wire frame of the subscription codec;
// -subscribe-frames FILE registers client-encoded registration frames
// (pisd-client -subscribe-out).
//
//	pisd-server -addr 127.0.0.1:7001 -shards 2 &
//	pisd-frontend -cloud 127.0.0.1:7001,127.0.0.1:7002 \
//	    -users 2000 -subscribe 100 -churn 60
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"pisd"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pisd-frontend:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cloudAddr = flag.String("cloud", "127.0.0.1:7001", "cloud server address")
		keysFile  = flag.String("keys", "", "key file: loaded if present, written after fresh key generation (keep it secret)")
		users     = flag.Int("users", 5000, "population size")
		dim       = flag.Int("dim", 500, "profile dimensionality")
		topics    = flag.Int("topics", 0, "interest topics in the population (0: scale with population size)")
		k         = flag.Int("k", 5, "recommendations per discovery")
		discover  = flag.String("discover", "1", "comma-separated target user ids")
		attach    = flag.Bool("attach", false, "attach to a pisd-segbuild index instead of building (requires the build's -keys file and -users)")
		seed      = flag.Int64("seed", 1, "population seed")
		obsAddr   = flag.String("obs", "", "observability HTTP address for /metrics and /debug/pprof; keeps the process alive until interrupted (empty: disabled)")

		conns       = flag.Int("conns-per-shard", 4, "pooled connections per shard server")
		maxBatch    = flag.Int("max-batch", 16, "coalesced queries per SecRecBatch flush")
		window      = flag.Duration("coalesce-window", 200*time.Microsecond, "max wait for a coalesced flush")
		maxInflight = flag.Int("max-inflight", 256, "admitted concurrent discoveries (0: unbounded)")
		cacheSize   = flag.Int("cache", 4096, "search-pattern result cache entries (0: disabled)")

		replicas = flag.Int("replicas", 1, "replicas per shard: the -cloud list is grouped into consecutive runs of R addresses, reads fail over inside each group")
		probeIvl = flag.Duration("probe-interval", time.Second, "health-probe cadence for replica demotion/re-admission (with -replicas > 1)")
		waves    = flag.Int("waves", 1, "repetitions of the discovery wave (sustained load for failover demos)")

		dynamic   = flag.Bool("dynamic", false, "build the updatable index and serve through the cached dynamic path")
		subscribe = flag.Int("subscribe", 0, "standing top-k subscriptions to register for users 1..N (implies -dynamic)")
		subFrames = flag.String("subscribe-frames", "", "register client-encoded registration frames from this file (pisd-client -subscribe-out; implies -dynamic)")
		churn     = flag.Int("churn", 0, "churn-wave operations against the live dynamic index (implies -dynamic)")
		notifyOut = flag.String("notify-out", "", "append each notification as one subscription-codec wire frame to this file (decode with pisd-client -notifications)")
	)
	flag.Parse()
	if *subscribe > 0 || *churn > 0 || *subFrames != "" {
		*dynamic = true
	}

	servingCfg := pisd.ServingConfig{
		MaxBatch:     *maxBatch,
		Window:       *window,
		MaxInflight:  *maxInflight,
		CacheEntries: *cacheSize,
	}

	if *obsAddr != "" {
		bound, err := pisd.ServeMetrics(pisd.Metrics, *obsAddr)
		if err != nil {
			return fmt.Errorf("observability endpoint: %w", err)
		}
		fmt.Printf("observability endpoint on http://%s (/metrics, /debug/pprof/)\n", bound)
	}

	if *topics == 0 {
		*topics = dataset.AutoTopics(*users)
	}
	// This config literal is shared verbatim with pisd-segbuild: -attach
	// regenerates the population deterministically, so the two tools must
	// agree on it for the same flags. Dynamic mode appends a spare-profile
	// pool beyond the population — the churn wave's fresh users — which
	// leaves the first -users profiles identical.
	extra := 0
	if *dynamic {
		extra = *churn
	}
	ds, err := dataset.Generate(dataset.Config{
		Users: *users + extra, Dim: *dim, Topics: *topics, TopicsPerUser: 2,
		ActiveWords: *dim / 12, Noise: 0.02, PersonalWeight: 0.6, Seed: *seed,
	})
	if err != nil {
		return err
	}

	// Derive the LSH atom count from -users the same way pisd-segbuild
	// does, so -attach computes trapdoors under the hash family the
	// segmented index was built with.
	cfg := pisd.FrontendConfigForPopulation(*dim, *users)
	var sf *pisd.Frontend
	if *keysFile != "" {
		if blob, err := os.ReadFile(*keysFile); err == nil {
			sf, err = frontend.NewWithKeys(cfg, blob)
			if err != nil {
				return fmt.Errorf("restore keys from %s: %w", *keysFile, err)
			}
			fmt.Printf("restored keys from %s\n", *keysFile)
		} else if !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	if *attach && sf == nil {
		return errors.New("-attach requires -keys pointing at the key file pisd-segbuild wrote")
	}
	if sf == nil {
		var err error
		sf, err = pisd.NewFrontend(cfg)
		if err != nil {
			return err
		}
		if *keysFile != "" {
			blob, err := sf.ExportKeys()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*keysFile, blob, 0o600); err != nil {
				return fmt.Errorf("persist keys: %w", err)
			}
			fmt.Printf("generated fresh keys and saved them to %s\n", *keysFile)
		}
	}
	var uploads []pisd.Upload
	if !*attach && !*dynamic {
		// Attach mode issues trapdoors only; no uploads are (re)hashed.
		// Dynamic mode builds its own uploads over the population (the
		// spare churn profiles stay out of the initial index).
		uploads = make([]pisd.Upload, len(ds.Profiles))
		for i, p := range ds.Profiles {
			uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
		}
	}

	addrs := splitList(*cloudAddr)
	if len(addrs) == 0 {
		return errors.New("no cloud address given")
	}
	if *replicas < 1 {
		return fmt.Errorf("replicas must be >= 1, got %d", *replicas)
	}
	if len(addrs)%*replicas != 0 {
		return fmt.Errorf("%d cloud addresses do not divide into groups of %d replicas", len(addrs), *replicas)
	}
	if *dynamic {
		if *attach {
			return errors.New("-attach does not support -dynamic")
		}
		opts := dynOptions{
			subscribe:       *subscribe,
			subscribeFrames: *subFrames,
			churn:           *churn,
			notifyOut:       *notifyOut,
			conns:           *conns,
			replicas:        *replicas,
			serving:         servingCfg,
		}
		if err := runDynamic(sf, ds, addrs, *users, *k, *discover, opts); err != nil {
			return err
		}
		return lingerIfObs(*obsAddr)
	}
	if len(addrs) > 1 {
		if *attach {
			return errors.New("-attach supports a single cloud server")
		}
		if err := runSharded(sf, ds, uploads, addrs, *k, *discover, *conns, *replicas, *probeIvl, *waves, servingCfg); err != nil {
			return err
		}
		return lingerIfObs(*obsAddr)
	}

	client, err := pisd.DialCloud(addrs[0])
	if err != nil {
		return err
	}
	defer client.Close()

	if *attach {
		if err := sf.AttachSegmented(*users); err != nil {
			return err
		}
		fmt.Printf("attached to segmented index over %d users at %s\n", *users, addrs[0])
	} else {
		buildStart := time.Now()
		idx, encProfiles, err := sf.BuildIndex(uploads)
		if err != nil {
			return err
		}
		fmt.Printf("built secure index over %d users in %s (%.1f MB)\n",
			len(uploads), time.Since(buildStart).Round(time.Millisecond),
			float64(idx.SizeBytes())/(1<<20))
		if err := client.InstallIndex(idx); err != nil {
			return err
		}
		if err := client.PutProfiles(encProfiles); err != nil {
			return err
		}
		fmt.Printf("outsourced index and %d encrypted profiles to %s\n", len(encProfiles), *cloudAddr)
	}

	targets, err := parseTargets(*discover, len(ds.Profiles))
	if err != nil {
		return err
	}
	serving, err := sf.NewServing(pisd.SingleFanout{S: client}, servingCfg)
	if err != nil {
		return err
	}
	if err := discoverServing(serving, ds, targets, *k); err != nil {
		return err
	}
	sent, recv := client.Traffic()
	fmt.Printf("\ntotal traffic: %.1f KB sent, %.1f KB received\n",
		float64(sent)/1024, float64(recv)/1024)
	return lingerIfObs(*obsAddr)
}

// lingerIfObs keeps the process alive until interrupted when the
// observability endpoint is enabled, so /metrics stays scrapeable after
// the discoveries complete (the CI smoke step depends on this).
func lingerIfObs(obsAddr string) error {
	if obsAddr == "" {
		return nil
	}
	fmt.Println("\nobservability endpoint active; press Ctrl-C to exit")
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	return nil
}

// runSharded is the multi-shard deployment path: one projected index per
// partition, discoveries fanned out to all partitions in parallel. With
// replicas > 1 the address list is grouped into consecutive runs of R
// addresses; each run becomes one failover replica group behind the pool,
// with a background health prober driving demotion and re-admission.
func runSharded(sf *pisd.Frontend, ds *dataset.Dataset, uploads []pisd.Upload, addrs []string, k int, discover string, conns, replicas int, probeIvl time.Duration, waves int, servingCfg pisd.ServingConfig) error {
	partitions := len(addrs) / replicas
	remotes := make([]*pisd.RemoteShard, len(addrs))
	for i, addr := range addrs {
		r := pisd.NewRemoteShard(addr)
		r.SetConns(conns)
		defer r.Close()
		remotes[i] = r
	}
	nodes := make([]pisd.ShardNode, partitions)
	if replicas == 1 {
		for i, r := range remotes {
			nodes[i] = r
		}
	} else {
		groups := make([]*pisd.ReplicaGroup, partitions)
		for g := 0; g < partitions; g++ {
			members := make([]pisd.ReplicaNode, replicas)
			for r := 0; r < replicas; r++ {
				members[r] = remotes[g*replicas+r]
			}
			grp, err := pisd.NewReplicaGroup(g, pisd.ReplicaGroupConfig{}, members...)
			if err != nil {
				return err
			}
			groups[g] = grp
			nodes[g] = grp
		}
		prober := pisd.NewHealthProber(pisd.HealthProberConfig{Interval: probeIvl}, groups...)
		prober.Start()
		defer prober.Stop()
		fmt.Printf("replicated fleet: %d partitions x %d replicas, probing every %s\n",
			partitions, replicas, probeIvl)
	}
	pool, err := pisd.NewShardPool(pisd.DefaultShardPoolConfig(), nodes...)
	if err != nil {
		return err
	}

	buildStart := time.Now()
	shards, err := sf.BuildShardedIndex(uploads, partitions, nil)
	if err != nil {
		return err
	}
	var indexBytes int
	for _, sh := range shards {
		indexBytes += sh.Index.SizeBytes()
	}
	fmt.Printf("built %d-shard secure index over %d users in %s (%.1f MB total)\n",
		len(shards), len(uploads), time.Since(buildStart).Round(time.Millisecond),
		float64(indexBytes)/(1<<20))
	for s, sh := range shards {
		if err := pool.InstallShard(s, sh.Index, sh.EncProfiles); err != nil {
			return err
		}
		fmt.Printf("shard %d: outsourced index and %d encrypted profiles to %s\n",
			s, len(sh.EncProfiles), strings.Join(addrs[s*replicas:(s+1)*replicas], ","))
	}

	targets, err := parseTargets(discover, len(ds.Profiles))
	if err != nil {
		return err
	}
	serving, err := sf.NewServing(pool, servingCfg)
	if err != nil {
		return err
	}
	for w := 0; w < waves; w++ {
		if waves > 1 {
			fmt.Printf("\n--- wave %d/%d ---\n", w+1, waves)
		}
		if err := discoverServing(serving, ds, targets, k); err != nil {
			return err
		}
	}
	var sent, recv int64
	for _, r := range remotes {
		s, rv := r.Traffic()
		sent += s
		recv += rv
	}
	fmt.Printf("\ntotal traffic: %.1f KB sent, %.1f KB received across %d shards\n",
		float64(sent)/1024, float64(recv)/1024, len(addrs))
	return nil
}

// discoverServing runs the targets through the multi-core serving path:
// distinct targets are issued concurrently (the coalescer folds them into
// shared SecRecBatch flushes), and repeated targets are issued in a
// second wave so they demonstrably hit the search-pattern result cache.
// Results are printed in target order.
func discoverServing(serving *pisd.Serving, ds *dataset.Dataset, targets []uint64, k int) error {
	type outcome struct {
		matches []pisd.Match
		partial bool
		took    time.Duration
		err     error
	}
	outs := make([]outcome, len(targets))
	start := time.Now()
	seen := make(map[uint64]bool, len(targets))
	var firstWave, repeatWave []int
	for i, id := range targets {
		if seen[id] {
			repeatWave = append(repeatWave, i)
			continue
		}
		seen[id] = true
		firstWave = append(firstWave, i)
	}
	runWave := func(wave []int) {
		var wg sync.WaitGroup
		for _, i := range wave {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				id := targets[i]
				qs := time.Now()
				m, partial, err := serving.Discover(context.Background(), ds.Profiles[id-1], k, id)
				outs[i] = outcome{matches: m, partial: partial, took: time.Since(qs), err: err}
			}(i)
		}
		wg.Wait()
	}
	runWave(firstWave)
	runWave(repeatWave)
	fmt.Printf("\nserving-path discovery for %d users took %s:\n",
		len(targets), time.Since(start).Round(time.Microsecond))
	for i, id := range targets {
		o := outs[i]
		if o.err != nil {
			return fmt.Errorf("discover user %d: %w", id, o.err)
		}
		note := ""
		if o.partial {
			note = " [PARTIAL: one or more shards unreachable]"
		}
		fmt.Printf("\nuser %d (topics %v) in %s%s:\n",
			id, ds.UserTopics[id-1], o.took.Round(time.Microsecond), note)
		printMatches(ds, o.matches)
	}
	return nil
}

func printMatches(ds *dataset.Dataset, matches []pisd.Match) {
	for rank, m := range matches {
		fmt.Printf("  %d. user %-6d distance %.4f topics %v\n",
			rank+1, m.ID, m.Distance, ds.UserTopics[m.ID-1])
	}
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// parseTargets parses the -discover id list against the population size.
func parseTargets(discover string, n int) ([]uint64, error) {
	var out []uint64
	for _, tok := range splitList(discover) {
		id, err := strconv.ParseUint(tok, 10, 64)
		if err != nil || id == 0 || id > uint64(n) {
			return nil, fmt.Errorf("invalid target user %q", tok)
		}
		out = append(out, id)
	}
	return out, nil
}
