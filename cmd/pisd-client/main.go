// Command pisd-client simulates one user client Usr: it renders the
// user's preferred topic images, runs the two client-side tasks of the
// paper (GenProf feature extraction + BoW profile, ComputeLSH metadata),
// reports their cost, and optionally uploads a policy-encrypted image to a
// cloud server.
//
//	pisd-client -topics flower,dog -images 5
//	pisd-client -topics beach -cloud 127.0.0.1:7001 -upload
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pisd"
	"pisd/internal/sharing"
	"pisd/internal/surf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pisd-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topicsFlag = flag.String("topics", "flower,dog", "comma-separated preferred topics")
		images     = flag.Int("images", 5, "preferred images to generate")
		vocabWords = flag.Int("vocab", 128, "visual-word vocabulary size")
		userID     = flag.Uint64("id", 1, "user identifier")
		cloudAddr  = flag.String("cloud", "", "cloud server address (empty: offline)")
		upload     = flag.Bool("upload", false, "upload an encrypted image to the cloud")
		seed       = flag.Int64("seed", 1, "image seed")
	)
	flag.Parse()

	topics, err := parseTopics(*topicsFlag)
	if err != nil {
		return err
	}

	// The vocabulary and LSH parameters are normally pre-shared by the
	// front end; this standalone client trains a local stand-in.
	fmt.Println("preparing shared vocabulary ...")
	var sample []pisd.Descriptor
	for _, t := range pisd.AllTopics() {
		for i := 0; i < 4; i++ {
			im, err := pisd.RenderTopicImage(t, *seed+int64(i), 96, 96)
			if err != nil {
				return err
			}
			descs, err := surf.Extract(im, surf.DefaultOptions())
			if err != nil {
				return err
			}
			sample = append(sample, descs...)
		}
	}
	vocab, err := pisd.TrainVocabulary(sample, *vocabWords)
	if err != nil {
		return err
	}
	lshParams := pisd.DefaultFrontendConfig(vocab.Size()).LSH

	user, err := pisd.NewUser(*userID, vocab, lshParams)
	if err != nil {
		return err
	}
	imgs := make([]*pisd.Image, *images)
	for i := range imgs {
		im, err := pisd.RenderTopicImage(topics[i%len(topics)], *seed+int64(100+i), 128, 128)
		if err != nil {
			return err
		}
		imgs[i] = im
	}

	profStart := time.Now()
	profile, err := user.GenProf(imgs)
	if err != nil {
		return err
	}
	profDur := time.Since(profStart)
	metaStart := time.Now()
	meta := user.ComputeLSH(profile)
	metaDur := time.Since(metaStart)

	nonZero := 0
	for _, v := range profile {
		if v > 0 {
			nonZero++
		}
	}
	fmt.Printf("user %d profile: %d dims, %d active visual words\n", *userID, len(profile), nonZero)
	fmt.Printf("GenProf (%d images): %s   ComputeLSH (%d tables): %s\n",
		len(imgs), profDur.Round(time.Millisecond), len(meta), metaDur.Round(time.Microsecond))

	if *cloudAddr == "" {
		return nil
	}
	client, err := pisd.DialCloud(*cloudAddr)
	if err != nil {
		return err
	}
	defer client.Close()
	if *upload {
		authority, err := pisd.NewSharingAuthority()
		if err != nil {
			return err
		}
		ct, err := authority.Encrypt(sharing.AllOf("friend"), encodeImage(imgs[0]))
		if err != nil {
			return err
		}
		if err := client.StoreImage(*userID, ct.Payload); err != nil {
			return err
		}
		fmt.Printf("uploaded one encrypted image (%d B) to %s\n", len(ct.Payload), *cloudAddr)
	}
	return client.Ping()
}

func parseTopics(s string) ([]pisd.Topic, error) {
	byName := make(map[string]pisd.Topic)
	for _, t := range pisd.AllTopics() {
		byName[t.String()] = t
	}
	var out []pisd.Topic
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		t, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown topic %q (known: %v)", name, pisd.AllTopics())
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no topics given")
	}
	return out, nil
}

// encodeImage serializes the grayscale image to bytes for upload.
func encodeImage(im *pisd.Image) []byte {
	out := make([]byte, 0, len(im.Pix))
	for _, v := range im.Pix {
		out = append(out, byte(v*255))
	}
	return out
}
