// Command pisd-client simulates one user client Usr: it renders the
// user's preferred topic images, runs the two client-side tasks of the
// paper (GenProf feature extraction + BoW profile, ComputeLSH metadata),
// reports their cost, and optionally uploads a policy-encrypted image to a
// cloud server.
//
//	pisd-client -topics flower,dog -images 5
//	pisd-client -topics beach -cloud 127.0.0.1:7001 -upload
//
// The client also speaks the standing-query wire codec: -subscribe-out
// FILE encodes a registration frame for the computed profile (handed to a
// front end started with -subscribe-frames), and -notifications FILE
// decodes a notification-frame stream the front end wrote with
// -notify-out, rejecting truncated or corrupted frames with the codec's
// typed errors.
//
//	pisd-client -topics beach -k 5 -subscribe-out sub.bin
//	pisd-client -notifications notify.bin
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pisd"
	"pisd/internal/sharing"
	"pisd/internal/surf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pisd-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topicsFlag = flag.String("topics", "flower,dog", "comma-separated preferred topics")
		images     = flag.Int("images", 5, "preferred images to generate")
		vocabWords = flag.Int("vocab", 128, "visual-word vocabulary size")
		userID     = flag.Uint64("id", 1, "user identifier")
		cloudAddr  = flag.String("cloud", "", "cloud server address (empty: offline)")
		upload     = flag.Bool("upload", false, "upload an encrypted image to the cloud")
		seed       = flag.Int64("seed", 1, "image seed")

		subOut    = flag.String("subscribe-out", "", "encode a standing-query registration frame for the computed profile into this file")
		subK      = flag.Int("k", 5, "standing-query top-k for -subscribe-out")
		notifFile = flag.String("notifications", "", "decode a notification-frame stream (pisd-frontend -notify-out) and exit")
	)
	flag.Parse()

	if *notifFile != "" {
		return decodeNotifications(*notifFile)
	}

	topics, err := parseTopics(*topicsFlag)
	if err != nil {
		return err
	}

	// The vocabulary and LSH parameters are normally pre-shared by the
	// front end; this standalone client trains a local stand-in.
	fmt.Println("preparing shared vocabulary ...")
	var sample []pisd.Descriptor
	for _, t := range pisd.AllTopics() {
		for i := 0; i < 4; i++ {
			im, err := pisd.RenderTopicImage(t, *seed+int64(i), 96, 96)
			if err != nil {
				return err
			}
			descs, err := surf.Extract(im, surf.DefaultOptions())
			if err != nil {
				return err
			}
			sample = append(sample, descs...)
		}
	}
	vocab, err := pisd.TrainVocabulary(sample, *vocabWords)
	if err != nil {
		return err
	}
	lshParams := pisd.DefaultFrontendConfig(vocab.Size()).LSH

	user, err := pisd.NewUser(*userID, vocab, lshParams)
	if err != nil {
		return err
	}
	imgs := make([]*pisd.Image, *images)
	for i := range imgs {
		im, err := pisd.RenderTopicImage(topics[i%len(topics)], *seed+int64(100+i), 128, 128)
		if err != nil {
			return err
		}
		imgs[i] = im
	}

	profStart := time.Now()
	profile, err := user.GenProf(imgs)
	if err != nil {
		return err
	}
	profDur := time.Since(profStart)
	metaStart := time.Now()
	meta := user.ComputeLSH(profile)
	metaDur := time.Since(metaStart)

	nonZero := 0
	for _, v := range profile {
		if v > 0 {
			nonZero++
		}
	}
	fmt.Printf("user %d profile: %d dims, %d active visual words\n", *userID, len(profile), nonZero)
	fmt.Printf("GenProf (%d images): %s   ComputeLSH (%d tables): %s\n",
		len(imgs), profDur.Round(time.Millisecond), len(meta), metaDur.Round(time.Microsecond))

	if *subOut != "" {
		if err := writeRegistration(*subOut, *userID, *subK, profile); err != nil {
			return err
		}
	}

	if *cloudAddr == "" {
		return nil
	}
	client, err := pisd.DialCloud(*cloudAddr)
	if err != nil {
		return err
	}
	defer client.Close()
	if *upload {
		authority, err := pisd.NewSharingAuthority()
		if err != nil {
			return err
		}
		ct, err := authority.Encrypt(sharing.AllOf("friend"), encodeImage(imgs[0]))
		if err != nil {
			return err
		}
		if err := client.StoreImage(*userID, ct.Payload); err != nil {
			return err
		}
		fmt.Printf("uploaded one encrypted image (%d B) to %s\n", len(ct.Payload), *cloudAddr)
	}
	return client.Ping()
}

func parseTopics(s string) ([]pisd.Topic, error) {
	byName := make(map[string]pisd.Topic)
	for _, t := range pisd.AllTopics() {
		byName[t.String()] = t
	}
	var out []pisd.Topic
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		t, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown topic %q (known: %v)", name, pisd.AllTopics())
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no topics given")
	}
	return out, nil
}

// writeRegistration encodes one standing-query registration frame for the
// profile and self-verifies it by decoding the written bytes back.
func writeRegistration(path string, subID uint64, k int, profile []float64) error {
	frame, err := pisd.EncodeSubscriptionRegistration(pisd.SubscriptionRegistration{
		SubID: subID, K: k, ExcludeID: subID, Profile: profile,
	})
	if err != nil {
		return fmt.Errorf("encode registration: %w", err)
	}
	decoded, consumed, err := pisd.DecodeSubscriptionFrame(frame)
	if err != nil || consumed != len(frame) || decoded.Registration == nil {
		return fmt.Errorf("registration frame failed self-verification: %v", err)
	}
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		return err
	}
	fmt.Printf("encoded standing-query registration (user %d, top-%d, %d B) to %s\n",
		subID, k, len(frame), path)
	return nil
}

// decodeNotifications decodes a notification-frame stream, printing each
// standing-result change; a damaged stream is reported with the codec's
// typed error (truncation, checksum mismatch, bad payload, ...).
func decodeNotifications(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	n := 0
	for len(data) > 0 {
		frame, consumed, err := pisd.DecodeSubscriptionFrame(data)
		if err != nil {
			switch {
			case errors.Is(err, pisd.ErrSubscriptionTruncated):
				return fmt.Errorf("frame %d: stream truncated mid-frame: %w", n, err)
			case errors.Is(err, pisd.ErrSubscriptionChecksum):
				return fmt.Errorf("frame %d: corrupted in transit: %w", n, err)
			default:
				return fmt.Errorf("frame %d: %w", n, err)
			}
		}
		data = data[consumed:]
		nt := frame.Notification
		if nt == nil {
			return fmt.Errorf("frame %d is not a notification", n)
		}
		n++
		kind := "entered"
		if nt.Promoted {
			kind = "promoted"
		}
		evict := ""
		if nt.EvictedID != 0 {
			evict = fmt.Sprintf(" evicting user %d", nt.EvictedID)
		}
		fmt.Printf("notify[seq %d] sub %d: user %d %s at distance %.4f%s\n",
			nt.Seq, nt.SubID, nt.ID, kind, nt.Distance, evict)
	}
	fmt.Printf("decoded %d notification frame(s) from %s\n", n, path)
	return nil
}

// encodeImage serializes the grayscale image to bytes for upload.
func encodeImage(im *pisd.Image) []byte {
	out := make([]byte, 0, len(im.Pix))
	for _, v := range im.Pix {
		out = append(out, byte(v*255))
	}
	return out
}
