// Command pisd-experiments regenerates the tables and figures of the
// paper's evaluation (Sec. V).
//
// Usage:
//
//	pisd-experiments [-scale quick|default|paper] [-exp fig5b,fig4a|all]
//	                 [-index-n N] [-acc-n N] [-queries N] [-pipeline-n N]
//	                 [-dim D] [-seed S]
//
// Examples:
//
//	pisd-experiments -scale quick -exp all
//	pisd-experiments -exp fig4c -index-n 1000000     # paper-scale Fig 4(c)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pisd/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pisd-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("pisd-experiments", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "default", "workload scale: quick, default or paper")
		expList   = fs.String("exp", "all", "comma-separated experiments or 'all': "+strings.Join(experiments.AllExperiments(), ","))
		indexN    = fs.Int("index-n", 0, "override: users for index experiments (Fig 4, 5a)")
		accN      = fs.Int("acc-n", 0, "override: users for accuracy experiments (Fig 5b, 5c)")
		queries   = fs.Int("queries", 0, "override: query count per accuracy point")
		pipelineN = fs.Int("pipeline-n", 0, "override: users for the image-pipeline experiment (Fig 3)")
		dim       = fs.Int("dim", 0, "override: profile dimensionality (vocabulary size)")
		seed      = fs.Int64("seed", 0, "override: random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "default":
		scale = experiments.Default()
	case "paper":
		scale = experiments.Paper()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *indexN > 0 {
		scale.IndexUsers = *indexN
	}
	if *accN > 0 {
		scale.AccuracyUsers = *accN
	}
	if *queries > 0 {
		scale.Queries = *queries
	}
	if *pipelineN > 0 {
		scale.PipelineUsers = *pipelineN
	}
	if *dim > 0 {
		scale.Dim = *dim
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	if err := scale.Validate(); err != nil {
		return err
	}

	fmt.Fprintf(out, "PISD experiment harness — scale: index n=%d, accuracy n=%d, %d queries, dim=%d, seed=%d\n\n",
		scale.IndexUsers, scale.AccuracyUsers, scale.Queries, scale.Dim, scale.Seed)

	if *expList == "all" {
		return experiments.RunAll(scale, out)
	}
	for _, name := range strings.Split(*expList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := experiments.Run(name, scale, out); err != nil {
			return err
		}
	}
	return nil
}
