package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runToFile(t *testing.T, args []string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-scale", "nope"},
		{"-scale", "quick", "-exp", "doesnotexist"},
		{"-scale", "quick", "-index-n", "50", "-exp", "client"}, // below Scale minimum
	}
	for _, args := range cases {
		if _, err := runToFile(t, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunClientExperiment(t *testing.T) {
	out, err := runToFile(t, []string{"-scale", "quick", "-exp", "client"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Client overhead", "image profile generation", "completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunOverrides(t *testing.T) {
	out, err := runToFile(t, []string{
		"-scale", "quick", "-exp", "fig4a",
		"-index-n", "2000", "-seed", "9",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "index n=2000") {
		t.Errorf("override not reflected in header:\n%s", out)
	}
	if !strings.Contains(out, "2000 (measured)") {
		t.Errorf("measured row missing:\n%s", out)
	}
}
