// Command pisd-genimages renders the procedural topic corpus to PGM files
// on disk, so the synthetic substitute for the paper's Flickr dataset can
// be inspected with any image viewer and fed to external tooling.
//
//	pisd-genimages -out ./corpus -per-topic 10 -size 128
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pisd/internal/imaging"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pisd-genimages:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "corpus", "output directory")
		perTopic = flag.Int("per-topic", 10, "images per topic")
		size     = flag.Int("size", 128, "image side length in pixels")
		seed     = flag.Int64("seed", 1, "render seed")
	)
	flag.Parse()
	if *perTopic < 1 {
		return fmt.Errorf("per-topic must be >= 1")
	}
	total := 0
	for _, topic := range imaging.AllTopics() {
		dir := filepath.Join(*out, topic.String())
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for i := 0; i < *perTopic; i++ {
			im, err := imaging.Render(topic, *seed+int64(i), *size, *size)
			if err != nil {
				return err
			}
			path := filepath.Join(dir, fmt.Sprintf("%s_%03d.pgm", topic, i))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := imaging.WritePGM(f, im); err != nil {
				f.Close()
				return fmt.Errorf("write %s: %w", path, err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			total++
		}
	}
	fmt.Printf("rendered %d images across %d topics into %s\n", total, imaging.NumTopics, *out)
	return nil
}
