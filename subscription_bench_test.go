// Frontend-side subscription evaluation benchmarks (DESIGN.md §18): the
// marginal cost an insert pays to evaluate N standing subscriptions. The
// evaluation is a pure frontend computation — refs-intersection match
// against every standing read set, then a distance + top-k transition for
// the matches — so this is the entire price of a subscription under
// churn; the cloud-visible work is identical with 0 or 10,000 of them
// (TestLeakageInvariantSubscriptions proves that end to end).
//
// Each iteration is one churn pair — OnInsert of a fresh id followed by
// the compensating OnDelete — so candidate sets stay in steady state and
// ns/op is comparable across subscription counts.
package pisd

import (
	"fmt"
	"testing"

	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/subs"
)

// subEvalFixture holds a built 2-shard dynamic deployment's geometry:
// per-shard clients for reference-set computation plus the profile pool
// driving the churn.
type subEvalFixture struct {
	f      *frontend.Frontend
	ds     *dataset.Dataset
	shards []frontend.DynShard
}

const (
	subEvalUsers  = 300
	subEvalDim    = 64
	subEvalShards = 2
	subEvalPool   = 256 // distinct insert profiles cycled through the churn
)

func buildSubEvalFixture(b *testing.B) *subEvalFixture {
	b.Helper()
	f, err := frontend.New(frontend.Config{
		LSH:        frontend.DefaultConfig(subEvalDim).LSH,
		LoadFactor: 0.6,
		ProbeRange: 4,
		MaxLoop:    500,
		MaxRehash:  3,
		Seed:       7,
		KeySeed:    "subscription-eval-bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Config{
		Users: subEvalUsers + subEvalPool + 2048, Dim: subEvalDim, Topics: 8,
		TopicsPerUser: 2, ActiveWords: 12, Noise: 0.02, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	uploads := make([]frontend.Upload, subEvalUsers)
	for i := 0; i < subEvalUsers; i++ {
		uploads[i] = frontend.Upload{ID: uint64(i + 1), Profile: ds.Profiles[i], Meta: f.ComputeMeta(ds.Profiles[i])}
	}
	built, err := f.BuildShardedDynamicIndex(uploads, subEvalShards, nil)
	if err != nil {
		b.Fatal(err)
	}
	return &subEvalFixture{f: f, ds: ds, shards: built}
}

// taggedRefs computes profile's standing read set across every shard —
// the registration-time computation.
func (fx *subEvalFixture) taggedRefs(b *testing.B, profile []float64) []subs.Ref {
	b.Helper()
	meta := fx.f.ComputeMeta(profile)
	var out []subs.Ref
	for sh := range fx.shards {
		refs, err := fx.shards[sh].Client.Refs(meta)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range refs {
			out = append(out, subs.Ref{Shard: sh, Table: r.Table, Pos: r.Pos})
		}
	}
	return out
}

// shardRefs computes profile's insert write set on one owning shard —
// the per-insert computation the evaluation hook reuses.
func (fx *subEvalFixture) shardRefs(b *testing.B, sh int, profile []float64) []subs.Ref {
	b.Helper()
	meta := fx.f.ComputeMeta(profile)
	refs, err := fx.shards[sh].Client.Refs(meta)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]subs.Ref, len(refs))
	for i, r := range refs {
		out[i] = subs.Ref{Shard: sh, Table: r.Table, Pos: r.Pos}
	}
	return out
}

// BenchmarkSubscriptionEval measures one insert's subscription evaluation
// (plus the compensating delete eviction) against N standing
// subscriptions over the real 2-shard index geometry: real reference
// sets, real profile distances, notifications delivered to a sink.
func BenchmarkSubscriptionEval(b *testing.B) {
	fx := buildSubEvalFixture(b)
	for _, n := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			var delivered int
			m := subs.NewManager(func(subs.Notification) { delivered++ })
			for i := 0; i < n; i++ {
				subID := uint64(i + 1)
				target := fx.ds.Profiles[i%subEvalUsers]
				if _, err := m.Register(subID, 5, target, subID, fx.taggedRefs(b, target), nil); err != nil {
					b.Fatal(err)
				}
			}
			// Precompute the churn pool: profiles with their write sets on
			// both shards, so the timed loop is exactly the evaluation.
			profiles := make([][]float64, subEvalPool)
			refsByShard := make([][][]subs.Ref, subEvalShards)
			for sh := range refsByShard {
				refsByShard[sh] = make([][]subs.Ref, subEvalPool)
			}
			for i := 0; i < subEvalPool; i++ {
				profiles[i] = fx.ds.Profiles[subEvalUsers+i]
				for sh := 0; sh < subEvalShards; sh++ {
					refsByShard[sh][i] = fx.shardRefs(b, sh, profiles[i])
				}
			}
			base := uint64(1 << 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := base + uint64(i)
				p := i % subEvalPool
				m.OnInsert(id, profiles[p], refsByShard[id%subEvalShards][p])
				m.OnDelete(id)
			}
			b.StopTimer()
			// ResetTimer clears extra metrics, so the subscription count is
			// stamped after the timed loop.
			b.ReportMetric(float64(n), "subs")
			if m.Len() != n {
				b.Fatalf("%d subscriptions survived, want %d", m.Len(), n)
			}
			_ = delivered
		})
	}
}
