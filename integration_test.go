package pisd_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"pisd"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/sharing"
)

// TestFullSystemOverTCP drives the complete paper flow — and the
// repository's extensions — through the public API against a cloud server
// on a real TCP socket:
//
//  1. users render photos, extract profiles, upload encrypted images;
//  2. the front end builds the secure index with compact profiles and
//     outsources everything;
//  3. discovery, multi-probe discovery and FoF boosting run remotely;
//  4. the dynamic index handles a profile update and a batch update;
//  5. the cloud persists its state, restarts, and a key-restored front
//     end keeps serving.
func TestFullSystemOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("full system test")
	}
	const (
		nUsers = 400
		dim    = 200
	)
	ds, err := dataset.Generate(dataset.Config{
		Users: nUsers, Dim: dim, Topics: 12, TopicsPerUser: 2,
		ActiveWords: 25, Noise: 0.02, PersonalWeight: 0.4, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- Cloud over TCP.
	cs := pisd.NewCloud()
	server := pisd.NewCloudServer(cs)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		server.Shutdown(ctx)
	}()
	client, err := pisd.DialCloud(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetTimeout(30 * time.Second)

	// --- Front end with compact (paper-sized) profiles.
	cfg := pisd.DefaultFrontendConfig(dim)
	cfg.LSH.Atoms = 2
	cfg.LSH.Width = 0.8
	cfg.ProbeRange = 8
	cfg.KeySeed = "integration"
	cfg.CompactProfiles = true
	sf, err := pisd.NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// --- Step 1: a user uploads a policy-encrypted image directly to CS.
	authority := sharing.NewAuthorityFromSeed("integration")
	im, err := pisd.RenderTopicImage(pisd.Topic(1), 3, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	var sample []pisd.Descriptor
	for i := int64(0); i < 3; i++ {
		img, err := pisd.RenderTopicImage(pisd.Topic(2), i, 96, 96)
		if err != nil {
			t.Fatal(err)
		}
		descs, err := extractDescriptors(img)
		if err != nil {
			t.Fatal(err)
		}
		sample = append(sample, descs...)
	}
	vocab, err := pisd.TrainVocabulary(sample, 16)
	if err != nil {
		t.Fatal(err)
	}
	usr, err := pisd.NewUser(1, vocab, pisd.LSHParams{Dim: 16, Tables: 4, Atoms: 2, Width: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	encImg, err := usr.EncryptImage(authority, sharing.AllOf("friend"), im)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.StoreImage(1, encImg.Ciphertext.Payload); err != nil {
		t.Fatal(err)
	}

	// --- Step 2: index build + outsourcing.
	uploads := make([]pisd.Upload, nUsers)
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
	}
	idx, encProfiles, err := sf.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.InstallIndex(idx); err != nil {
		t.Fatal(err)
	}
	if err := client.PutProfiles(encProfiles); err != nil {
		t.Fatal(err)
	}

	// --- Step 3: discovery variants.
	matches, err := sf.Discover(client, ds.Profiles[0], 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no remote matches")
	}
	mp, err := sf.DiscoverMultiProbe(client, ds.Profiles[0], 5, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp) < len(matches) {
		t.Fatal("multi-probe returned fewer results")
	}
	graph := pisd.NewSocialGraph()
	graph.AddFriendship(1, 2)
	graph.AddFriendship(2, matches[0].ID)
	if _, err := sf.DiscoverFoF(client, graph, 1, ds.Profiles[0], 5); err != nil {
		t.Fatal(err)
	}
	batch, err := sf.DiscoverWithDecoys(client, [][]float64{ds.Profiles[0], ds.Profiles[1]}, 5, 3,
		rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("batched discovery returned %d target results", len(batch))
	}

	// --- Step 4: dynamic index with single and batch updates, remotely.
	dynIdx, dynClient, dynProfiles, err := sf.BuildDynamicIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.InstallDynIndex(dynIdx); err != nil {
		t.Fatal(err)
	}
	if err := client.PutProfiles(dynProfiles); err != nil {
		t.Fatal(err)
	}
	oldMeta := sf.ComputeMeta(ds.Profiles[9])
	newMeta := sf.ComputeMeta(ds.Profiles[100])
	if _, err := dynClient.BatchUpdate(client, []pisd.DynUpdate{
		{Op: pisd.OpDelete, ID: 10, Meta: oldMeta},
		{Op: pisd.OpInsert, ID: 10, Meta: newMeta},
	}); err != nil {
		t.Fatalf("remote batch update: %v", err)
	}
	ids, err := dynClient.Search(client, newMeta)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range ids {
		if id == 10 {
			found = true
		}
	}
	if !found {
		t.Fatal("batch-updated user not reachable under new metadata")
	}

	// --- Step 5: cloud persistence + key-restored front end.
	stateDir := t.TempDir()
	if err := cs.SaveTo(stateDir); err != nil {
		t.Fatal(err)
	}
	cs2 := pisd.NewCloud()
	if err := cs2.LoadFrom(stateDir); err != nil {
		t.Fatal(err)
	}
	keyBlob, err := sf.ExportKeys()
	if err != nil {
		t.Fatal(err)
	}
	params, err := sf.IndexParams()
	if err != nil {
		t.Fatal(err)
	}
	sf2, err := frontend.NewWithKeys(cfg, keyBlob)
	if err != nil {
		t.Fatal(err)
	}
	if err := sf2.RestoreIndexParams(params); err != nil {
		t.Fatal(err)
	}
	restoredMatches, err := sf2.Discover(cs2, ds.Profiles[0], 5, 1)
	if err != nil {
		t.Fatalf("discovery after full restart: %v", err)
	}
	if len(restoredMatches) != len(matches) {
		t.Fatalf("restored results %d vs original %d", len(restoredMatches), len(matches))
	}
	for i := range matches {
		if restoredMatches[i].ID != matches[i].ID {
			t.Fatal("restored system ranks differently")
		}
	}
}
