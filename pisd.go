// Package pisd is a Go implementation of "Enabling Privacy-preserving
// Image-centric Social Discovery" (Yuan, Wang, Wang, Squicciarini, Ren —
// IEEE ICDCS 2014): friend discovery over encrypted images outsourced to
// an honest-but-curious cloud.
//
// # Architecture
//
// Three entities cooperate (paper Fig. 1):
//
//   - User clients extract SURF features from their preferred images,
//     quantize them against a shared Bag-of-Words vocabulary into an image
//     profile S, compute LSH metadata V, and upload encrypted images.
//   - The trusted service front end (Frontend) holds all keys, builds a
//     secure LSH+cuckoo index over the profiles, issues trapdoors and
//     ranks decrypted matches.
//   - The untrusted cloud (Cloud, or a remote process via CloudClient)
//     stores ciphertext only and answers trapdoor queries.
//
// # Quick start
//
//	sys, err := pisd.NewSystem(pisd.DefaultSystemConfig(1000))
//	...
//	sys.AddProfiles(uploads)          // service frontend initialization
//	matches, err := sys.Discover(profile, 5)
//
// See examples/ for complete programs, including the full image pipeline
// and a TCP-distributed deployment.
package pisd

import (
	"fmt"

	"pisd/internal/bow"
	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/fof"
	"pisd/internal/frontend"
	"pisd/internal/groups"
	"pisd/internal/imaging"
	"pisd/internal/lsh"
	"pisd/internal/obs"
	"pisd/internal/segstore"
	"pisd/internal/shard"
	"pisd/internal/sharing"
	"pisd/internal/subs"
	"pisd/internal/surf"
	"pisd/internal/transport"
)

// Re-exported building blocks. The aliases make the vetted internal
// implementations part of the public API without duplicating them.
type (
	// Image is a grayscale image fed to the feature extractor.
	Image = imaging.Image
	// Topic identifies a procedural image class of the synthetic corpus.
	Topic = imaging.Topic
	// Descriptor is a 64-D SURF feature vector.
	Descriptor = surf.Descriptor
	// Vocabulary is the shared visual-word vocabulary Δ.
	Vocabulary = bow.Vocabulary
	// Metadata is the user metadata V = {h_1(S), ..., h_l(S)}.
	Metadata = lsh.Metadata
	// LSHParams defines the shared LSH family h.
	LSHParams = lsh.Params
	// KeySet is the front-end secret key material K.
	KeySet = crypt.KeySet
	// Frontend is the trusted service front end SF.
	Frontend = frontend.Frontend
	// FrontendConfig parameterizes the front end.
	FrontendConfig = frontend.Config
	// Upload is one user's (S, V) contribution to index building.
	Upload = frontend.Upload
	// Match is one discovery recommendation.
	Match = frontend.Match
	// Cloud is the in-process untrusted cloud server CS.
	Cloud = cloud.Server
	// CloudServer serves a Cloud over TCP.
	CloudServer = transport.Server
	// CloudClient is a remote handle to a CloudServer.
	CloudClient = transport.Client
	// Index is the static secure similarity index I.
	Index = core.Index
	// DynIndex is the updatable secure index of Sec. III-D.
	DynIndex = core.DynIndex
	// DynClient drives secure update protocols against a DynIndex.
	DynClient = core.DynClient
	// DynUpdate is one operation of a batch profile update.
	DynUpdate = core.Update
	// Trapdoor is a secure discovery request t.
	Trapdoor = core.Trapdoor
	// SocialGraph is the friendship graph used for FoF filtering.
	SocialGraph = fof.Graph
	// SharingAuthority issues attribute keys for encrypted image sharing.
	SharingAuthority = sharing.Authority
	// SharingPolicy is a DNF attribute policy for shared images.
	SharingPolicy = sharing.Policy
	// Shard is one cloud shard's installable state (partitioned index +
	// owned encrypted profiles).
	Shard = frontend.Shard
	// DynShard is one cloud shard's dynamic state.
	DynShard = frontend.DynShard
	// DynNode is one shard's cloud surface for the dynamic scheme;
	// LocalShard, RemoteShard and ReplicaGroup all implement it.
	DynNode = frontend.DynNode
	// ShardNode is one shard's cloud surface (in-process or remote).
	ShardNode = shard.Node
	// LocalShard adapts an in-process Cloud as a shard node.
	LocalShard = shard.Local
	// RemoteShard adapts a TCP cloud server as a shard node.
	RemoteShard = shard.Remote
	// ShardPool fans discovery out across shard nodes and merges results.
	ShardPool = shard.Pool
	// ShardPoolConfig tunes fan-out timeouts, retries and owner routing.
	ShardPoolConfig = shard.Config
	// ReplicaNode is a shard node carrying the replication version/repair
	// surface; LocalShard and RemoteShard both implement it.
	ReplicaNode = shard.ReplicaNode
	// ReplicaGroup replicates one shard partition across R nodes behind
	// the plain ShardNode surface: reads fail over, writes fan out.
	ReplicaGroup = shard.ReplicaGroup
	// ReplicaGroupConfig tunes a replica group's dispatch behaviour.
	ReplicaGroupConfig = shard.GroupConfig
	// ReplicaStatus is a point-in-time view of one group member.
	ReplicaStatus = shard.ReplicaStatus
	// HealthProber demotes dead replicas and re-admits recovered ones.
	HealthProber = shard.Prober
	// HealthProberConfig tunes probe cadence and demotion thresholds.
	HealthProberConfig = shard.ProberConfig
	// ReplicaRepairer is the anti-entropy loop re-syncing lagging replicas.
	ReplicaRepairer = shard.Repairer
	// ReplicaRepairerConfig tunes the anti-entropy cadence.
	ReplicaRepairerConfig = shard.RepairerConfig
	// Rebalancer migrates partition state onto a newly joined replica in
	// bounded online chunks.
	Rebalancer = shard.Rebalancer
	// RepairNode is the replica surface the front end's repair closures
	// drive; ReplicaNode satisfies it.
	RepairNode = frontend.RepairNode
	// ReplicaMigration is the front-end closure set a Rebalancer drives.
	ReplicaMigration = frontend.ReplicaMigration
	// Group is one discovered social group.
	Group = groups.Group
	// GroupNeighbor is one per-user discovery result fed to grouping.
	GroupNeighbor = groups.Neighbor
	// GroupOptions tunes group discovery.
	GroupOptions = groups.Options
	// SegmentStore is the on-disk segmented index store that can back a
	// Cloud in place of the in-RAM index.
	SegmentStore = segstore.Store
	// SegmentInfo describes one live segment of a SegmentStore.
	SegmentInfo = segstore.SegmentInfo
	// SegmentCompactor merges small segments into larger generations.
	SegmentCompactor = segstore.Compactor
	// SegmentCompactorConfig tunes compaction fan-out and concurrency.
	SegmentCompactorConfig = segstore.CompactorConfig
	// SegmentBuilder streams upload batches into an on-disk segmented
	// index at the front end (bounded-memory builds).
	SegmentBuilder = frontend.SegmentBuilder
	// Serving is the static scheme's multi-core discovery path: admission
	// gate → search-pattern result cache → adaptive batch coalescer over
	// the shard fan-out (build with Frontend.NewServing).
	Serving = frontend.Serving
	// DynServing is the dynamic scheme's cached serving path with exact
	// cache invalidation on insert/delete (Frontend.NewDynServing).
	DynServing = frontend.DynServing
	// ServingConfig tunes coalescing, admission control and the cache.
	ServingConfig = frontend.ServingConfig
	// ResultCache is the bounded search-pattern result cache.
	ResultCache = frontend.ResultCache
	// AdmissionGate is the bounded inflight-query semaphore.
	AdmissionGate = frontend.AdmissionGate
	// Coalescer folds concurrent discoveries into shared batch fan-outs.
	Coalescer = frontend.Coalescer
	// SingleFanout adapts a single cloud server or client to the serving
	// path's fan-out surface.
	SingleFanout = frontend.SingleFanout
	// SubscriptionManager is the frontend-side standing-query index:
	// registered top-k subscriptions evaluated on every dynamic update
	// (attach with DynServing.AttachSubscriptions).
	SubscriptionManager = subs.Manager
	// SubscriptionEntry is one member of a standing top-k result.
	SubscriptionEntry = subs.Entry
	// SubscriptionNotification is one standing-result change event.
	SubscriptionNotification = subs.Notification
	// SubscriptionRegistration is the client → frontend standing-query
	// request carried by the subscription wire codec.
	SubscriptionRegistration = subs.Registration
	// SubscriptionFrame is one decoded subscription wire frame.
	SubscriptionFrame = subs.Frame
	// SubscriptionRef addresses one secure-index bucket in a standing
	// read set (shard, table, position).
	SubscriptionRef = subs.Ref
	// SubOracle is the plaintext subscription reference mirror used by
	// the oracle-differential churn suites (Frontend.NewSubOracle).
	SubOracle = frontend.SubOracle
	// MetricsRegistry is a named collection of observability metrics.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time metrics capture with Diff/Flatten.
	MetricsSnapshot = obs.Snapshot
	// QueryTrace is one discovery's per-stage latency breakdown.
	QueryTrace = obs.Trace
)

// Constructors re-exported with the package's vocabulary.
var (
	// NewCloud returns an empty in-process cloud server.
	NewCloud = cloud.New
	// NewFrontend creates a service front end (generates keys, shares
	// LSH parameters).
	NewFrontend = frontend.New
	// NewCloudServer wraps a Cloud for TCP serving.
	NewCloudServer = transport.NewServer
	// DialCloud connects to a remote cloud server.
	DialCloud = transport.Dial
	// NewSocialGraph returns an empty friendship graph.
	NewSocialGraph = fof.NewGraph
	// NewSharingAuthority creates a per-user sharing authority.
	NewSharingAuthority = sharing.NewAuthority
	// RenderTopicImage procedurally renders one image of a topic class.
	RenderTopicImage = imaging.Render
	// AllTopics lists the procedural topic classes.
	AllTopics = imaging.AllTopics
	// DefaultFrontendConfig is the paper's default operating point
	// (l=10 tables, d=4 probes, τ=0.8) for the given profile dimension.
	DefaultFrontendConfig = frontend.DefaultConfig
	// FrontendConfigForPopulation is DefaultFrontendConfig with the LSH
	// atom count scaled to the expected population (k ≈ log n), keeping
	// the cuckoo placement below saturation at large n. Build and attach
	// must derive their config from the same population size.
	FrontendConfigForPopulation = frontend.ConfigForPopulation
	// DefaultGroupOptions is the standard group-discovery configuration.
	DefaultGroupOptions = groups.DefaultOptions
	// NewShardPool assembles a fan-out pool over shard nodes.
	NewShardPool = shard.NewPool
	// NewLocalShard wraps an in-process Cloud as a shard node.
	NewLocalShard = shard.NewLocal
	// NewRemoteShard points a shard node at a TCP cloud server.
	NewRemoteShard = shard.NewRemote
	// DefaultShardPoolConfig is the standard fan-out configuration
	// (5 s per-shard deadline, one retry).
	DefaultShardPoolConfig = shard.DefaultConfig
	// DefaultShardOwner is the id-mod-S shard ownership function.
	DefaultShardOwner = core.DefaultOwner
	// NewReplicaGroup assembles one partition's replica group.
	NewReplicaGroup = shard.NewReplicaGroup
	// NewHealthProber assembles the fleet's membership/health prober.
	NewHealthProber = shard.NewProber
	// NewReplicaRepairer assembles the fleet's anti-entropy repairer.
	NewReplicaRepairer = shard.NewRepairer
	// NewReplicaRepair builds the front-end repair closure the repairer
	// drives (re-masking resync from a healthy sibling).
	NewReplicaRepair = frontend.NewReplicaRepair
	// NewReplicaMigration builds the front-end closures a Rebalancer
	// drives to migrate state onto a newly joined replica.
	NewReplicaMigration = frontend.NewReplicaMigration
	// OpenSegmentStore opens a segment directory written by a
	// SegmentBuilder (or pisd-segbuild) for serving.
	OpenSegmentStore = segstore.Open
	// NewSegmentCompactor assembles a compactor over a segment store and
	// a key-holder-side rewriter.
	NewSegmentCompactor = segstore.NewCompactor
	// ErrCorruptState reports a damaged persisted file — a segment or any
	// cloud state file — on load.
	ErrCorruptState = segstore.ErrCorruptState
	// Metrics is the process-wide observability registry every tier
	// records into by default.
	Metrics = obs.Default
	// ServeMetrics starts the observability HTTP endpoint (/metrics JSON
	// snapshot + /debug/pprof/*) for a registry and returns the bound
	// address.
	ServeMetrics = obs.Serve
	// MetricsHandler builds the observability http.Handler without
	// binding a listener.
	MetricsHandler = obs.Handler
	// DefaultServingConfig is the standard serving-path operating point
	// (16-query flushes, 200µs window, 256 inflight, 4096-entry cache).
	DefaultServingConfig = frontend.DefaultServingConfig
	// NewCoalescer builds an adaptive batch coalescer over a fan-out.
	NewCoalescer = frontend.NewCoalescer
	// NewAdmissionGate builds a bounded inflight-query gate.
	NewAdmissionGate = frontend.NewAdmissionGate
	// NewResultCache builds a bounded search-pattern result cache.
	NewResultCache = frontend.NewResultCache
	// ErrOverloaded is the admission gate's typed fast rejection.
	ErrOverloaded = frontend.ErrOverloaded
	// NewSubscriptionManager builds a standing-query index delivering
	// change events to the given emit callback.
	NewSubscriptionManager = subs.NewManager
	// EncodeSubscriptionRegistration encodes one registration frame of
	// the subscription wire codec.
	EncodeSubscriptionRegistration = subs.EncodeRegistration
	// EncodeSubscriptionNotification encodes one notification frame of
	// the subscription wire codec.
	EncodeSubscriptionNotification = subs.EncodeNotification
	// DecodeSubscriptionFrame decodes the first subscription frame in a
	// byte stream, returning the frame and its consumed length. Errors
	// are typed (ErrSubscriptionTruncated, ErrSubscriptionChecksum, ...).
	DecodeSubscriptionFrame = subs.Decode
	// ErrSubscriptionTruncated reports a subscription frame cut short.
	ErrSubscriptionTruncated = subs.ErrTruncated
	// ErrSubscriptionChecksum reports a corrupted subscription frame.
	ErrSubscriptionChecksum = subs.ErrChecksum
	// ErrSubscriptionBadPayload reports a well-framed but invalid
	// subscription payload.
	ErrSubscriptionBadPayload = subs.ErrBadPayload
)

// Batch update operations (Sec. III-D batch-update extension).
const (
	// OpDelete removes an identifier from the dynamic index.
	OpDelete = core.OpDelete
	// OpInsert adds an identifier to the dynamic index.
	OpInsert = core.OpInsert
)

// GenKeys implements K ← Gen(1^λ) for l hash tables.
func GenKeys(l int) (*KeySet, error) { return crypt.Gen(l) }

// TrainVocabulary trains the shared visual-word vocabulary Δ by k-means
// over a sample of SURF descriptors (the paper trains a 1000-word
// vocabulary on 10% of its corpus).
func TrainVocabulary(samples []Descriptor, words int) (*Vocabulary, error) {
	return bow.Train(samples, bow.DefaultTrainConfig(words))
}

// User is a user client Usr: it performs the two client-side tasks of the
// paper (GenProf and ComputeLSH) plus image encryption for upload.
type User struct {
	// ID is the user identifier L.
	ID uint64
	// vocab is the pre-shared vocabulary Δ.
	vocab *bow.Vocabulary
	// family is the pre-shared LSH family h.
	family *lsh.Family
	// surfOpts tunes local feature extraction.
	surfOpts surf.Options
}

// NewUser creates a user client from the parameters the front end
// pre-shares (Δ and h).
func NewUser(id uint64, vocab *Vocabulary, lshParams LSHParams) (*User, error) {
	if vocab == nil || vocab.Size() == 0 {
		return nil, fmt.Errorf("pisd: user %d: empty vocabulary", id)
	}
	if lshParams.Dim != vocab.Size() {
		return nil, fmt.Errorf("pisd: user %d: LSH dim %d does not match vocabulary size %d",
			id, lshParams.Dim, vocab.Size())
	}
	family, err := lsh.New(lshParams)
	if err != nil {
		return nil, fmt.Errorf("pisd: user %d: %w", id, err)
	}
	return &User{ID: id, vocab: vocab, family: family, surfOpts: surf.DefaultOptions()}, nil
}

// GenProf implements S ← GenProf({Img}, Δ): SURF extraction on every
// preferred image, BoW quantization against Δ, aggregation and
// normalization into the image profile S.
func (u *User) GenProf(images []*Image) ([]float64, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("pisd: user %d: no preferred images", u.ID)
	}
	perImage := make([][]surf.Descriptor, 0, len(images))
	for i, im := range images {
		descs, err := surf.Extract(im, u.surfOpts)
		if err != nil {
			return nil, fmt.Errorf("pisd: user %d image %d: %w", u.ID, i, err)
		}
		perImage = append(perImage, descs)
	}
	return u.vocab.Profile(perImage)
}

// ComputeLSH implements V ← ComputeLSH(S, h).
func (u *User) ComputeLSH(profile []float64) Metadata {
	return u.family.Hash(profile)
}

// Upload bundles GenProf and ComputeLSH into the (S, V) pair sent to the
// front end.
func (u *User) Upload(images []*Image) (Upload, error) {
	profile, err := u.GenProf(images)
	if err != nil {
		return Upload{}, err
	}
	return Upload{ID: u.ID, Profile: profile, Meta: u.ComputeLSH(profile)}, nil
}
